//! The batch service: parse → admit → supervise → respond.
//!
//! A [`BatchService`] turns batches of JSONL job requests into JSONL
//! responses, in request order, with a robustness layer at every stage:
//!
//! - **Admission control** — each batch admits at most `queue_depth`
//!   jobs; the rest are shed immediately with a typed `overloaded`
//!   response instead of queueing without bound.
//! - **Supervision** — every admitted job runs behind the executor's
//!   per-job `catch_unwind` isolation *and* a per-attempt retry loop
//!   with seeded, jittered exponential backoff; a panicking job costs
//!   one `panic` response, never the batch.
//! - **Deadlines** — each job gets a [`CancelToken`] created before any
//!   work starts; the trace interpreter polls it every few thousand
//!   emitted events and the simulator once per compressed trace run, so
//!   an expired deadline surfaces as a typed `deadline_exceeded`
//!   response — whether it expires during prepare or simulate — without
//!   putting a branch in the per-reference hot loop.
//! - **Crash-safe caching** — results are memoized in a [`ResultCache`]
//!   whose persistence is atomic-rename-based and fsck'd at startup, so
//!   a `kill -9` mid-flush never corrupts warm state.
//!
//! Success responses carry only deterministic simulation fields, so a
//! faulty run's surviving responses are byte-identical to a fault-free
//! run's — the chaos suite's central assertion.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cdmm_core::fleet::{prepare_fleet, FleetError};
use cdmm_core::sweep::{self, plan, spec_key, Point, SweepPlan};
use cdmm_core::{
    panic_message, prepare_cancellable, Executor, InterpError, PipelineConfig, PipelineError,
    PolicySpec, Prepared, ResultCache,
};
use cdmm_vmsim::{
    CancelToken, FleetReport, Histogram, JsonlSink, Metrics, MetricsRegistry, NullTracer,
    ProgressCounters, SimError, Tee,
};
use cdmm_workloads::{by_name, Scale};

use crate::faults::FaultInjector;
use crate::request::{
    attach_fields, encode_err, encode_fleet_ok, encode_ok, encode_registry, encode_sweep_ok,
    parse_request, ErrorKind, FleetRequest, JobRequest, Request, SweepFamily, SweepRequest,
    WorkSource,
};

/// Service-wide knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = honor `CDMM_THREADS`/available parallelism).
    pub threads: usize,
    /// Jobs admitted per batch; the rest are shed as `overloaded`.
    pub queue_depth: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Extra attempts after a panicking first try.
    pub max_retries: u32,
    /// Base of the jittered exponential backoff between attempts
    /// (zero: retry immediately — what the tests use).
    pub backoff_base: Duration,
    /// Seed for backoff jitter (and anything else that must replay).
    pub seed: u64,
    /// Cache directory (`None`: in-memory memoization only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue_depth: 64,
            default_deadline_ms: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            seed: 0,
            cache_dir: None,
        }
    }
}

/// Snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Request lines seen (including malformed and shed ones).
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed failure responses (all kinds, shed included).
    pub failed: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Jobs that failed with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Retry attempts performed (not counting first tries).
    pub retries: u64,
    /// Cache flushes that returned an I/O error (service kept going).
    pub flush_failures: u64,
}

/// SplitMix64 mixer for backoff jitter.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic, jittered backoff before attempt `attempt` (≥ 1)
/// of job `job`: `base · 2^(attempt-1)` plus a jitter in `[0, base)`,
/// both scaled from the seed so replays sleep identically.
pub fn backoff_delay(seed: u64, job: u64, attempt: u32, base: Duration) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
    let jitter_ns = mix(seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt as u64)
        % base.as_nanos().max(1) as u64;
    exp.saturating_add(Duration::from_nanos(jitter_ns))
}

/// Per-client request accounting, keyed by the optional `"client"`
/// request field and surfaced in the daemon's shutdown summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Requests attributed to this client (shed ones included).
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed failure responses.
    pub failed: u64,
}

/// How one supervised job ended, before response encoding. `extra`
/// carries pre-encoded observability members (`trace_lines`,
/// `trace_c`, `metrics`) spliced onto the response row; it is empty
/// unless the request opted in.
enum JobOutcome {
    Ok {
        label: String,
        metrics: Box<Metrics>,
        extra: String,
    },
    FleetOk {
        report: Box<FleetReport>,
        extra: String,
    },
    SweepOk {
        family: SweepFamily,
        points: Vec<Point>,
    },
    Err {
        kind: ErrorKind,
        detail: String,
    },
}

/// A fault-tolerant batch executor over the simulation pipeline.
pub struct BatchService {
    config: ServeConfig,
    exec: Executor,
    cache: ResultCache,
    faults: Option<Arc<FaultInjector>>,
    /// Memoized prepared programs, keyed by (source, knobs) hash.
    programs: Mutex<HashMap<u128, Arc<Prepared>>>,
    latency: Mutex<Histogram>,
    clients: Mutex<BTreeMap<String, ClientStats>>,
    progress: Option<Arc<ProgressCounters>>,
    requests: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries: AtomicU64,
    flush_failures: AtomicU64,
}

impl BatchService {
    /// Builds a service, opening (and fsck'ing) the persistent cache
    /// when a directory is configured.
    pub fn new(config: ServeConfig) -> io::Result<Self> {
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::at_dir(dir)?,
            None => ResultCache::in_memory(),
        };
        let exec = if config.threads == 0 {
            Executor::from_env()
        } else {
            Executor::with_threads(config.threads)
        };
        Ok(BatchService {
            config,
            exec,
            cache,
            faults: None,
            programs: Mutex::new(HashMap::new()),
            latency: Mutex::new(Histogram::new()),
            clients: Mutex::new(BTreeMap::new()),
            progress: None,
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            flush_failures: AtomicU64::new(0),
        })
    }

    /// Attaches a seeded fault injector (chaos runs only).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches shared [`ProgressCounters`]: admitted jobs bump the
    /// total/queue gauges and finished jobs the done/refs/latency ones,
    /// so a [`cdmm_vmsim::ProgressExporter`] sampling the same counters
    /// streams live frames while batches run.
    pub fn with_progress(mut self, progress: Arc<ProgressCounters>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Per-client accounting, name-ordered. Clients only appear when a
    /// request carried the optional `"client"` field.
    pub fn client_stats(&self) -> Vec<(String, ClientStats)> {
        self.clients
            .lock()
            .expect("clients lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn tally_client(&self, client: Option<&str>, ok: bool) {
        let Some(name) = client else { return };
        let mut map = self.clients.lock().expect("clients lock");
        let entry = map.entry(name.to_string()).or_default();
        entry.requests += 1;
        if ok {
            entry.ok += 1;
        } else {
            entry.failed += 1;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The result cache (for fsck/hit-rate assertions and stats).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            flush_failures: self.flush_failures.load(Ordering::Relaxed),
        }
    }

    /// Per-request wall-time percentile in nanoseconds (p in [0, 1]).
    pub fn latency_ns(&self, p: f64) -> u64 {
        self.latency.lock().expect("latency lock").percentile(p)
    }

    /// Handles one blank-line-delimited batch of request lines and
    /// returns one response line per request, in request order.
    pub fn handle_batch(&self, lines: &[&str]) -> Vec<String> {
        self.requests
            .fetch_add(lines.len() as u64, Ordering::Relaxed);
        // Parse every line first; admission control only counts jobs
        // that could actually run.
        let mut parsed: Vec<Result<Request, String>> = Vec::with_capacity(lines.len());
        for line in lines {
            parsed.push(parse_request(line));
        }
        let mut admitted: Vec<(usize, Request)> = Vec::new();
        let mut responses: Vec<Option<String>> = vec![None; lines.len()];
        for (i, p) in parsed.into_iter().enumerate() {
            match p {
                Err(detail) => {
                    responses[i] = Some(encode_err(
                        &request_id_hint(lines[i]),
                        ErrorKind::BadRequest,
                        &detail,
                    ));
                }
                Ok(req) => {
                    if admitted.len() < self.config.queue_depth {
                        admitted.push((i, req));
                    } else {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        self.tally_client(req.client(), false);
                        responses[i] = Some(encode_err(
                            req.id(),
                            ErrorKind::Overloaded,
                            &format!("queue depth {} exceeded", self.config.queue_depth),
                        ));
                    }
                }
            }
        }

        if let Some(p) = &self.progress {
            p.add_total(admitted.len() as u64);
            p.add_queued(admitted.len() as u64);
        }
        let outcomes = self.exec.try_map(&admitted, |job_index, (_, req)| {
            let t0 = Instant::now();
            let outcome = self.supervise(job_index as u64, req);
            let wall = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.latency.lock().expect("latency lock").record(wall);
            if let Some(p) = &self.progress {
                p.sub_queued(1);
                p.add_done(1);
                p.record_latency_ms(wall / 1_000_000);
                let refs = match &outcome {
                    JobOutcome::Ok { metrics, .. } => metrics.refs,
                    JobOutcome::FleetOk { report, .. } => report.total_refs,
                    // One curve pass walked the trace once, whatever
                    // the point count.
                    JobOutcome::SweepOk { points, .. } => {
                        points.first().map_or(0, |p| p.metrics.refs)
                    }
                    JobOutcome::Err { .. } => 0,
                };
                p.add_refs(refs);
            }
            outcome
        });
        for ((i, req), outcome) in admitted.iter().zip(outcomes) {
            let line = match outcome {
                Ok(JobOutcome::Ok {
                    label,
                    metrics,
                    extra,
                }) => attach_fields(&encode_ok(req.id(), &label, &metrics), &extra),
                Ok(JobOutcome::FleetOk { report, extra }) => {
                    attach_fields(&encode_fleet_ok(req.id(), &report), &extra)
                }
                Ok(JobOutcome::SweepOk { family, points }) => {
                    encode_sweep_ok(req.id(), family, &points)
                }
                Ok(JobOutcome::Err { kind, detail }) => encode_err(req.id(), kind, &detail),
                // The executor's catch_unwind is the last line of
                // defense — a panic that escaped the retry loop.
                Err(job_err) => encode_err(req.id(), ErrorKind::Panic, &job_err.message),
            };
            self.tally_client(req.client(), line.contains("\"ok\":true"));
            responses[*i] = Some(line);
        }
        if let Err(e) = self.cache.flush() {
            self.flush_failures.fetch_add(1, Ordering::Relaxed);
            let _ = e;
        }

        let out: Vec<String> = responses
            .into_iter()
            .map(|r| r.expect("every request produced a response"))
            .collect();
        for line in &out {
            if line.contains("\"ok\":true") {
                self.ok.fetch_add(1, Ordering::Relaxed);
            } else {
                self.failed.fetch_add(1, Ordering::Relaxed);
                if line.contains("\"error\":\"deadline_exceeded\"") {
                    self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// The retry loop around one job: typed failures return immediately,
    /// panics burn an attempt and back off with seeded jitter.
    fn supervise(&self, job: u64, req: &Request) -> JobOutcome {
        let attempts = self.config.max_retries + 1;
        let mut last_panic = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let delay = backoff_delay(self.config.seed, job, attempt, self.config.backoff_base);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            let run = catch_unwind(AssertUnwindSafe(|| {
                if let Some(f) = &self.faults {
                    f.maybe_panic(job, attempt as u64);
                }
                self.execute(req)
            }));
            match run {
                Ok(outcome) => return outcome,
                Err(payload) => last_panic = panic_message(payload.as_ref()),
            }
        }
        JobOutcome::Err {
            kind: ErrorKind::Panic,
            detail: format!("{last_panic} ({attempts} attempts)"),
        }
    }

    /// One attempt: start the deadline clock, then dispatch on the job
    /// kind under one shared cancel token.
    fn execute(&self, req: &Request) -> JobOutcome {
        // The clock starts before any work: prepare — whose trace
        // generation a pathological inline source can stretch without
        // bound — counts against the deadline too.
        let token = match req.deadline_ms().or(self.config.default_deadline_ms) {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        if token.should_stop() {
            // A born-expired deadline (deadline_ms: 0) must fail
            // identically whether or not the program or its result is
            // already memoized — so it short-circuits before either
            // lookup can introduce a replay-order dependence.
            return JobOutcome::Err {
                kind: ErrorKind::DeadlineExceeded,
                detail: "deadline expired after 0 references".to_string(),
            };
        }
        match req {
            Request::Sim(r) => self.execute_sim(r, &token),
            Request::Fleet(r) => self.execute_fleet(r, &token),
            Request::Sweep(r) => self.execute_sweep(r, &token),
        }
    }

    /// One sim attempt: resolve the program (trace generation polls the
    /// token), consult the cache, simulate under the same token. A
    /// `trace`/`metrics` request bypasses the cache read — the event
    /// stream is the product, so it must actually run — but its metrics
    /// still land in the cache for later untraced calls.
    fn execute_sim(&self, req: &JobRequest, token: &CancelToken) -> JobOutcome {
        let prepared = match self.prepared_for(req, token) {
            Ok(p) => p,
            Err(outcome) => return outcome,
        };
        let label = prepared.policy_label(req.policy);
        let key = spec_key(&prepared, req.policy);
        if !req.trace && !req.metrics {
            if let Some(metrics) = self.cache.lookup(key) {
                return JobOutcome::Ok {
                    label,
                    metrics: Box::new(metrics),
                    extra: String::new(),
                };
            }
        }
        let mut registry = MetricsRegistry::new();
        let mut sink = match self.trace_sink(req.trace, &req.id) {
            Ok(s) => s,
            Err(outcome) => return outcome,
        };
        let t0 = Instant::now();
        let result = match (&mut sink, req.metrics) {
            (None, false) => prepared.run_policy_cancellable(req.policy, token),
            (None, true) => prepared.run_policy_traced(req.policy, &mut registry, token),
            (Some(s), false) => prepared.run_policy_traced(req.policy, s, token),
            (Some(s), true) => {
                let mut tee = Tee::new(s, &mut registry);
                prepared.run_policy_traced(req.policy, &mut tee, token)
            }
        };
        match result {
            Ok(metrics) => {
                self.cache.record_sim(t0.elapsed());
                self.cache.insert(key, metrics);
                JobOutcome::Ok {
                    label,
                    metrics: Box::new(metrics),
                    extra: observability_extra(sink.as_ref(), req.metrics.then_some(&registry)),
                }
            }
            Err(SimError::DeadlineExceeded { refs_done }) => JobOutcome::Err {
                kind: ErrorKind::DeadlineExceeded,
                detail: format!("deadline expired after {refs_done} references"),
            },
            Err(other) => JobOutcome::Err {
                kind: ErrorKind::Pipeline,
                detail: other.to_string(),
            },
        }
    }

    /// Opens the checksummed JSONL sidecar a `"trace":true` request
    /// streams into: `serve-<id>.trace.jsonl` under the cache directory
    /// (the temp directory when no cache is configured), with the id
    /// sanitized to a filename-safe alphabet.
    fn trace_sink(&self, want: bool, id: &str) -> Result<Option<JsonlSink>, JobOutcome> {
        if !want {
            return Ok(None);
        }
        let sane: String = id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let dir = self
            .config
            .cache_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let path = dir.join(format!("serve-{sane}.trace.jsonl"));
        JsonlSink::create(&path)
            .map(Some)
            .map_err(|e| JobOutcome::Err {
                kind: ErrorKind::Pipeline,
                detail: format!("opening trace sidecar {}: {e}", path.display()),
            })
    }

    /// One fleet attempt: assemble the tenant population (workload
    /// prepares are memoized inside `prepare_fleet` per run) and drive
    /// the fleet scheduler under the same token. Fleet results bypass
    /// the [`ResultCache`] — it stores single-program [`Metrics`], and
    /// a fleet row is cheap to rebuild relative to its run time — but
    /// keep the full deadline/retry/panic supervision.
    fn execute_fleet(&self, req: &FleetRequest, token: &CancelToken) -> JobOutcome {
        let spec = req.fleet_spec();
        let prepared = match prepare_fleet(&spec) {
            Ok(p) => p,
            Err(e) => {
                let kind = match &e {
                    FleetError::Empty(_) => ErrorKind::BadRequest,
                    FleetError::UnknownWorkload(_) => ErrorKind::UnknownWorkload,
                    _ => ErrorKind::Pipeline,
                };
                return JobOutcome::Err {
                    kind,
                    detail: e.to_string(),
                };
            }
        };
        let mut registry = MetricsRegistry::new();
        let mut sink = match self.trace_sink(req.trace, &req.id) {
            Ok(s) => s,
            Err(outcome) => return outcome,
        };
        let result = match (&mut sink, req.metrics) {
            (None, false) => prepared.run_cancellable(&mut NullTracer, token),
            (None, true) => prepared.run_cancellable(&mut registry, token),
            (Some(s), false) => prepared.run_cancellable(s, token),
            (Some(s), true) => {
                let mut tee = Tee::new(s, &mut registry);
                prepared.run_cancellable(&mut tee, token)
            }
        };
        match result {
            Ok(report) => JobOutcome::FleetOk {
                report: Box::new(report),
                extra: observability_extra(sink.as_ref(), req.metrics.then_some(&registry)),
            },
            Err(FleetError::Sim(SimError::DeadlineExceeded { refs_done })) => JobOutcome::Err {
                kind: ErrorKind::DeadlineExceeded,
                detail: format!("deadline expired after {refs_done} references"),
            },
            Err(other) => JobOutcome::Err {
                kind: ErrorKind::Pipeline,
                detail: other.to_string(),
            },
        }
    }

    /// One sweep attempt: resolve the program, then answer the whole
    /// operating curve through the [`SweepPlan`] — one cancellable
    /// trace pass builds the family's curve (memoized per program in
    /// the [`ResultCache`], each materialized point warming the
    /// per-point cache that sim jobs read), and every parameter is an
    /// O(log) evaluation. With `CDMM_SWEEP_KERNELS=0` the job falls
    /// back to per-point cancellable simulation, byte-identical by the
    /// curve-equivalence gate.
    fn execute_sweep(&self, req: &SweepRequest, token: &CancelToken) -> JobOutcome {
        let prepared = match self.resolve_program(
            &req.work,
            req.scale,
            req.pipeline_config(),
            [req.page_bytes, req.fault_service, req.min_alloc],
            token,
        ) {
            Ok(p) => p,
            Err(outcome) => return outcome,
        };
        let params: Vec<u64> = match req.family {
            SweepFamily::Lru => sweep::full_lru_range(&prepared).map(|m| m as u64).collect(),
            SweepFamily::Ws => sweep::ws_tau_grid(&prepared, req.points.unwrap_or(6)),
        };
        if !plan::kernels_enabled() {
            let mut points = Vec::with_capacity(params.len());
            for &param in &params {
                let spec = match req.family {
                    SweepFamily::Lru => PolicySpec::Lru {
                        frames: param as usize,
                    },
                    SweepFamily::Ws => PolicySpec::Ws { tau: param },
                };
                let key = spec_key(&prepared, spec);
                if let Some(metrics) = self.cache.lookup(key) {
                    points.push(Point { param, metrics });
                    continue;
                }
                let t0 = Instant::now();
                match prepared.run_policy_cancellable(spec, token) {
                    Ok(metrics) => {
                        self.cache.record_sim(t0.elapsed());
                        self.cache.insert(key, metrics);
                        points.push(Point { param, metrics });
                    }
                    Err(SimError::DeadlineExceeded { refs_done }) => {
                        return JobOutcome::Err {
                            kind: ErrorKind::DeadlineExceeded,
                            detail: format!("deadline expired after {refs_done} references"),
                        }
                    }
                    Err(other) => {
                        return JobOutcome::Err {
                            kind: ErrorKind::Pipeline,
                            detail: other.to_string(),
                        }
                    }
                }
            }
            return JobOutcome::SweepOk {
                family: req.family,
                points,
            };
        }
        let sweep_plan = SweepPlan::new(&self.cache, &prepared);
        let keep_going = || !token.should_stop();
        let expired = || JobOutcome::Err {
            kind: ErrorKind::DeadlineExceeded,
            detail: "deadline expired during the sweep curve pass".to_string(),
        };
        let points: Vec<Point> = match req.family {
            SweepFamily::Lru => {
                let Some(curve) = sweep_plan.lru_curve_cancellable(keep_going) else {
                    return expired();
                };
                params
                    .iter()
                    .map(|&m| sweep_plan.lru_point(&curve, m as usize))
                    .collect()
            }
            SweepFamily::Ws => {
                let Some(curve) = sweep_plan.ws_curve_cancellable(keep_going) else {
                    return expired();
                };
                params
                    .iter()
                    .map(|&tau| sweep_plan.ws_point(&curve, tau))
                    .collect()
            }
        };
        JobOutcome::SweepOk {
            family: req.family,
            points,
        }
    }

    /// Resolves and memoizes the prepared program a sim request names;
    /// see [`BatchService::resolve_program`].
    fn prepared_for(
        &self,
        req: &JobRequest,
        token: &CancelToken,
    ) -> Result<Arc<Prepared>, JobOutcome> {
        self.resolve_program(
            &req.work,
            req.scale,
            req.pipeline_config(),
            [req.page_bytes, req.fault_service, req.min_alloc],
            token,
        )
    }

    /// Resolves and memoizes a prepared program. A deadline expiring
    /// during trace generation surfaces as a typed `deadline_exceeded`;
    /// cancelled prepares are never memoized (only completed ones reach
    /// the memo insert). `knobs` is every geometry field that changes
    /// the pipeline output, in memo-key order.
    fn resolve_program(
        &self,
        work: &WorkSource,
        scale: Scale,
        cfg: PipelineConfig,
        knobs: [Option<u64>; 3],
        token: &CancelToken,
    ) -> Result<Arc<Prepared>, JobOutcome> {
        let (name, source) = match work {
            WorkSource::Named(n) => match by_name(n, scale) {
                Some(w) => (w.name.to_string(), w.source),
                None => {
                    return Err(JobOutcome::Err {
                        kind: ErrorKind::UnknownWorkload,
                        detail: format!("no workload named \"{n}\" at {scale:?} scale"),
                    })
                }
            },
            WorkSource::Inline { name, source } => (name.clone(), source.clone()),
        };
        let memo_key = program_memo_key(&name, &source, knobs);
        if let Some(p) = self
            .programs
            .lock()
            .expect("programs lock")
            .get(&memo_key)
            .cloned()
        {
            return Ok(p);
        }
        match prepare_cancellable(&name, &source, cfg, token) {
            Ok(p) => {
                let p = Arc::new(p);
                self.programs
                    .lock()
                    .expect("programs lock")
                    .insert(memo_key, Arc::clone(&p));
                Ok(p)
            }
            Err(PipelineError::Interp(InterpError::Cancelled { events_done })) => {
                Err(JobOutcome::Err {
                    kind: ErrorKind::DeadlineExceeded,
                    detail: format!(
                        "deadline expired after {events_done} trace events during prepare"
                    ),
                })
            }
            Err(e) => Err(JobOutcome::Err {
                kind: ErrorKind::Pipeline,
                detail: e.to_string(),
            }),
        }
    }

    /// Streams blank-line-delimited batches from `input` to `output`:
    /// one response line per request, a blank line after each batch,
    /// output flushed at every batch boundary.
    pub fn serve_stream<R: BufRead, W: Write>(&self, input: R, mut output: W) -> io::Result<()> {
        let mut batch: Vec<String> = Vec::new();
        let flush_batch = |batch: &mut Vec<String>, output: &mut W| -> io::Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
            for line in self.handle_batch(&refs) {
                writeln!(output, "{line}")?;
            }
            writeln!(output)?;
            output.flush()?;
            batch.clear();
            Ok(())
        };
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                flush_batch(&mut batch, &mut output)?;
            } else {
                batch.push(line);
            }
        }
        flush_batch(&mut batch, &mut output)
    }
}

/// Pre-encoded observability members for a response row: the trace
/// sidecar's line count and rolling checksum (machine-independent — it
/// fingerprints the byte stream, not the path), then the integer-only
/// metrics digest. Empty when the request opted into neither.
fn observability_extra(sink: Option<&JsonlSink>, registry: Option<&MetricsRegistry>) -> String {
    let mut parts = Vec::new();
    if let Some(s) = sink {
        parts.push(format!(
            "\"trace_lines\":{},\"trace_c\":\"{:016x}\"",
            s.written(),
            s.stream_checksum()
        ));
    }
    if let Some(r) = registry {
        parts.push(encode_registry(&r.snapshot()));
    }
    parts.join(",")
}

/// Hash key for the prepared-program memo: program identity plus every
/// knob that changes the pipeline output
/// (`[page_bytes, fault_service, min_alloc]`).
fn program_memo_key(name: &str, source: &str, knobs: [Option<u64>; 3]) -> u128 {
    use cdmm_core::sweep::KeyHasher;
    let [page_bytes, fault_service, min_alloc] = knobs;
    let mut h = KeyHasher::new();
    h.write_str(name);
    h.write_str(source);
    h.write_u64(page_bytes.unwrap_or(0));
    h.write_u64(fault_service.unwrap_or(u64::MAX));
    h.write_u64(min_alloc.unwrap_or(u64::MAX));
    let k = h.finish();
    ((k.hi as u128) << 64) | k.lo as u128
}

/// Best-effort id extraction from a line that failed to parse, so even
/// `bad_request` responses stay correlated when possible.
fn request_id_hint(line: &str) -> String {
    let tag = "\"id\":\"";
    if let Some(start) = line.find(tag) {
        let rest = &line[start + tag.len()..];
        if let Some(end) = rest.find('"') {
            return rest[..end].to_string();
        }
    }
    "?".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSite;

    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(hook);
        match out {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    fn service(config: ServeConfig) -> BatchService {
        BatchService::new(config).expect("service builds")
    }

    #[test]
    fn happy_path_batch_runs_in_order() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"a","workload":"MAIN","policy":"cd"}"#,
            r#"{"id":"b","workload":"MAIN","policy":"lru","frames":8}"#,
            r#"{"id":"c","workload":"MAIN","policy":"ws","tau":500}"#,
        ];
        let out = s.handle_batch(&lines);
        assert_eq!(out.len(), 3);
        for (line, id) in out.iter().zip(["a", "b", "c"]) {
            assert!(line.contains(&format!("\"id\":\"{id}\"")), "{line}");
            assert!(line.contains("\"ok\":true"), "{line}");
        }
        let st = s.stats();
        assert_eq!((st.requests, st.ok, st.failed), (3, 3, 0));
    }

    #[test]
    fn responses_are_deterministic_across_thread_counts() {
        let lines: Vec<String> = (0..12)
            .map(|i| {
                format!(
                    r#"{{"id":"j{i}","workload":"MAIN","policy":"lru","frames":{}}}"#,
                    4 + i
                )
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let serial = service(ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        })
        .handle_batch(&refs);
        let parallel = service(ServeConfig {
            threads: 8,
            ..ServeConfig::default()
        })
        .handle_batch(&refs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bad_lines_become_typed_responses_without_sinking_the_batch() {
        let s = service(ServeConfig::default());
        let lines = vec![
            "this is not json",
            r#"{"id":"good","workload":"MAIN","policy":"cd"}"#,
            r#"{"id":"ghost","workload":"NOSUCH","policy":"cd"}"#,
        ];
        let out = s.handle_batch(&lines);
        assert!(out[0].contains("\"error\":\"bad_request\""), "{}", out[0]);
        assert!(out[1].contains("\"ok\":true"), "{}", out[1]);
        assert!(
            out[2].contains("\"error\":\"unknown_workload\""),
            "{}",
            out[2]
        );
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cdmm-serve-obs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn trace_and_metrics_opt_in_yield_checksummed_extras() {
        let dir = scratch_dir("extras");
        let config = ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let line = r#"{"id":"t1","workload":"MAIN","policy":"cd","trace":true,"metrics":true,"client":"alice"}"#;
        let first = service(config.clone()).handle_batch(&[line]);
        let second = service(config).handle_batch(&[line]);
        assert_eq!(first, second, "opted-in responses must stay byte-stable");
        let row = &first[0];
        assert!(row.contains("\"ok\":true"), "{row}");
        assert!(row.contains("\"trace_lines\":"), "{row}");
        assert!(row.contains("\"metrics\":{"), "{row}");
        // The in-band checksum must match a cold re-read of the sidecar.
        let c_at = row.find("\"trace_c\":\"").expect("trace_c present") + 11;
        let claimed = &row[c_at..c_at + 16];
        let path = dir.join("serve-t1.trace.jsonl");
        let on_disk = JsonlSink::file_stream_checksum(&path).expect("sidecar readable");
        assert_eq!(claimed, format!("{on_disk:016x}"), "{row}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_requests_carry_no_observability_members() {
        let s = service(ServeConfig::default());
        let out = s.handle_batch(&[r#"{"id":"p","workload":"MAIN","policy":"lru"}"#]);
        assert!(!out[0].contains("trace_"), "{}", out[0]);
        assert!(!out[0].contains("\"metrics\""), "{}", out[0]);
    }

    #[test]
    fn unknown_request_fields_are_rejected_end_to_end() {
        let s = service(ServeConfig::default());
        let out = s.handle_batch(&[r#"{"id":"x","workload":"MAIN","policy":"cd","trase":true}"#]);
        assert!(out[0].contains("\"error\":\"bad_request\""), "{}", out[0]);
        assert!(out[0].contains("unknown request field"), "{}", out[0]);
    }

    #[test]
    fn per_client_stats_key_on_the_client_field() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"a1","workload":"MAIN","policy":"cd","client":"alice"}"#,
            r#"{"id":"a2","workload":"NOSUCH","policy":"cd","client":"alice"}"#,
            r#"{"id":"b1","workload":"MAIN","policy":"lru","frames":8,"client":"bob"}"#,
            r#"{"id":"n1","workload":"MAIN","policy":"ws","tau":500}"#,
        ];
        s.handle_batch(&lines);
        let stats = s.client_stats();
        assert_eq!(
            stats.iter().map(|(c, _)| c.as_str()).collect::<Vec<_>>(),
            ["alice", "bob"],
            "anonymous requests stay out of the per-client table"
        );
        let alice = stats[0].1;
        assert_eq!((alice.requests, alice.ok, alice.failed), (2, 1, 1));
        let bob = stats[1].1;
        assert_eq!((bob.requests, bob.ok, bob.failed), (1, 1, 0));
    }

    #[test]
    fn fleet_trace_extras_are_deterministic_across_service_threads() {
        let dir = scratch_dir("fleet");
        let lines: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    r#"{{"id":"f{i}","job":"fleet","tenants":12,"seed":{i},"trace":true,"metrics":true}}"#
                )
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let serial = service(ServeConfig {
            threads: 1,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .handle_batch(&refs);
        let parallel = service(ServeConfig {
            threads: 4,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .handle_batch(&refs);
        assert_eq!(serial, parallel);
        assert!(serial[0].contains("\"trace_c\":\""), "{}", serial[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_control_sheds_beyond_queue_depth() {
        let s = service(ServeConfig {
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let lines: Vec<String> = (0..5)
            .map(|i| format!(r#"{{"id":"q{i}","workload":"MAIN","policy":"cd"}}"#))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let out = s.handle_batch(&refs);
        let shed: Vec<bool> = out
            .iter()
            .map(|l| l.contains("\"error\":\"overloaded\""))
            .collect();
        assert_eq!(shed, vec![false, false, true, true, true]);
        assert_eq!(s.stats().shed, 3);
    }

    #[test]
    fn zero_deadline_is_a_deterministic_typed_failure() {
        let s = service(ServeConfig::default());
        let lines = vec![r#"{"id":"dl","workload":"MAIN","policy":"cd","deadline_ms":0}"#];
        let a = s.handle_batch(&lines);
        assert!(a[0].contains("\"error\":\"deadline_exceeded\""), "{}", a[0]);
        assert_eq!(s.stats().deadline_exceeded, 1);
        // Replay: same typed failure, byte-identical (refs_done is 0
        // both times because the token expires before the first run).
        let b = s.handle_batch(&lines);
        assert_eq!(a, b);
    }

    #[test]
    fn injected_panics_are_retried_or_typed() {
        // 100% panic rate: every attempt panics, so the job fails as a
        // typed `panic` response after exhausting its retries.
        let always = Arc::new(FaultInjector::new(7).with_rate(FaultSite::JobPanic, 100));
        let s = service(ServeConfig {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            ..ServeConfig::default()
        })
        .with_faults(Arc::clone(&always));
        let lines = vec![r#"{"id":"p0","workload":"MAIN","policy":"cd"}"#];
        let out = quiet_panics(|| s.handle_batch(&lines));
        assert!(out[0].contains("\"error\":\"panic\""), "{}", out[0]);
        assert!(out[0].contains("injected fault"), "{}", out[0]);
        assert_eq!(s.stats().retries, 2, "both retries were burned");

        // A rate that spares some attempt lets the retry loop recover:
        // find a seed where job 0 panics at attempt 0 but not attempt 1.
        let seed = (0..1000)
            .find(|&sd| {
                let f = FaultInjector::new(sd);
                f.should_fault(FaultSite::JobPanic, 0, 0)
                    && !f.should_fault(FaultSite::JobPanic, 0, 1)
            })
            .expect("such a seed exists");
        let flaky = Arc::new(FaultInjector::new(seed));
        let s2 = service(ServeConfig {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            ..ServeConfig::default()
        })
        .with_faults(Arc::clone(&flaky));
        let out = quiet_panics(|| s2.handle_batch(&lines));
        assert!(
            out[0].contains("\"ok\":true"),
            "retry recovered: {}",
            out[0]
        );
        assert_eq!(s2.stats().retries, 1);
        assert_eq!(
            flaky.journal_lines().len(),
            1,
            "the injected panic journaled"
        );
    }

    #[test]
    fn cache_hits_skip_simulation_and_preserve_bytes() {
        let s = service(ServeConfig::default());
        let lines = vec![r#"{"id":"c1","workload":"FDJAC","policy":"lru","frames":10}"#];
        let cold = s.handle_batch(&lines);
        let warm = s.handle_batch(&lines);
        assert_eq!(cold, warm, "a cache hit must not change the response");
        let stats = s.cache().stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.sim_points, 1, "second call hit, no new simulation");
    }

    #[test]
    fn inline_source_jobs_run() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"inl","source":"PROGRAM TINY\nPARAMETER (N = 32)\nDIMENSION A(N)\nDO 1 I = 1, N\n  A(I) = 0.0\n1 CONTINUE\nEND\n","name":"TINY","policy":"lru","frames":4}"#,
        ];
        let out = s.handle_batch(&lines);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        // Bad inline source is a typed pipeline error.
        let bad = vec![r#"{"id":"syn","source":"NOT FORTRAN AT ALL","policy":"cd"}"#];
        let out = s.handle_batch(&bad);
        assert!(out[0].contains("\"error\":\"pipeline\""), "{}", out[0]);
    }

    #[test]
    fn serve_stream_handles_batches_and_blank_lines() {
        let s = service(ServeConfig::default());
        let input = "\
{\"id\":\"s1\",\"workload\":\"MAIN\",\"policy\":\"cd\"}\n\
\n\
{\"id\":\"s2\",\"workload\":\"MAIN\",\"policy\":\"lru\",\"frames\":6}\n\
{\"id\":\"s3\",\"workload\":\"MAIN\",\"policy\":\"ws\",\"tau\":100}\n";
        let mut out = Vec::new();
        s.serve_stream(io::Cursor::new(input), &mut out)
            .expect("stream serves");
        let text = String::from_utf8(out).expect("utf8");
        let blocks: Vec<&str> = text.trim_end().split("\n\n").collect();
        assert_eq!(
            blocks.len(),
            2,
            "two batches → two response blocks:\n{text}"
        );
        assert_eq!(blocks[0].lines().count(), 1);
        assert_eq!(blocks[1].lines().count(), 2);
        assert!(text
            .lines()
            .filter(|l| !l.is_empty())
            .all(|l| l.contains("\"ok\":true")));
    }

    #[test]
    fn fleet_jobs_run_under_the_same_supervision() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"f1","job":"fleet","tenants":6,"workloads":"FDJAC","mix":"ws:2000,lru:16","frames":32,"cell":2,"seed":7}"#,
            r#"{"id":"f2","job":"fleet","tenants":4,"policy":"cd"}"#,
            r#"{"id":"f3","job":"fleet","tenants":4,"workloads":"NOSUCH"}"#,
            r#"{"id":"f4","job":"fleet","tenants":4,"deadline_ms":0}"#,
        ];
        let out = s.handle_batch(&lines);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert!(out[0].contains("\"job\":\"fleet\""), "{}", out[0]);
        assert!(out[0].contains("\"tenants\":6"), "{}", out[0]);
        assert!(out[1].contains("\"error\":\"bad_request\""), "{}", out[1]);
        assert!(
            out[2].contains("\"error\":\"unknown_workload\""),
            "{}",
            out[2]
        );
        assert!(
            out[3].contains("\"error\":\"deadline_exceeded\""),
            "{}",
            out[3]
        );
    }

    #[test]
    fn fleet_rows_are_deterministic_across_service_geometry() {
        let line = r#"{"id":"fd","job":"fleet","tenants":8,"workloads":"FDJAC,TQL","mix":"cd,ws:2000","frames":48,"cell":4,"seed":11,"shards":3}"#;
        let mk = |threads| {
            service(ServeConfig {
                threads,
                ..ServeConfig::default()
            })
            .handle_batch(&[line])
        };
        let serial = mk(1);
        assert!(serial[0].contains("\"ok\":true"), "{}", serial[0]);
        assert_eq!(serial, mk(4), "fleet rows are byte-identical");
        // And replaying on the same service instance re-runs the fleet
        // (no result cache) but produces the identical row.
        let s = service(ServeConfig::default());
        assert_eq!(s.handle_batch(&[line]), s.handle_batch(&[line]));
    }

    #[test]
    fn sweep_jobs_answer_whole_curves_from_one_pass() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"sw1","job":"sweep","workload":"MAIN","family":"lru"}"#,
            r#"{"id":"sw2","job":"sweep","workload":"MAIN","family":"ws","points":4}"#,
        ];
        let out = s.handle_batch(&lines);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert!(out[0].contains("\"family\":\"lru\""), "{}", out[0]);
        assert!(out[1].contains("\"family\":\"ws\""), "{}", out[1]);

        // The digest rows must match the same sweeps run through the
        // library entry points directly (whatever engine is in force).
        let w = by_name("MAIN", Scale::Small).unwrap();
        let p = cdmm_core::prepare(w.name, &w.source, PipelineConfig::default()).unwrap();
        let lru = sweep::lru_sweep(&p, sweep::full_lru_range(&p));
        assert_eq!(out[0], encode_sweep_ok("sw1", SweepFamily::Lru, &lru));
        let ws = sweep::ws_sweep(&p, sweep::ws_tau_grid(&p, 4));
        assert_eq!(out[1], encode_sweep_ok("sw2", SweepFamily::Ws, &ws));

        // Replay: the curve memo answers without a second trace pass,
        // and the rows stay byte-identical.
        let sims_before = s.cache().stats().sim_points;
        assert_eq!(s.handle_batch(&lines), out);
        assert_eq!(
            s.cache().stats().sim_points,
            sims_before,
            "warm sweep replays must not re-run the trace pass"
        );
    }

    #[test]
    fn sweep_jobs_share_supervision_and_typed_failures() {
        let s = service(ServeConfig::default());
        let lines = vec![
            r#"{"id":"g1","job":"sweep","workload":"NOSUCH","family":"lru"}"#,
            r#"{"id":"g2","job":"sweep","workload":"MAIN","family":"ws","deadline_ms":0}"#,
            r#"{"id":"g3","job":"sweep","workload":"MAIN","family":"lru","trace":true}"#,
        ];
        let out = s.handle_batch(&lines);
        assert!(
            out[0].contains("\"error\":\"unknown_workload\""),
            "{}",
            out[0]
        );
        assert!(
            out[1].contains("\"error\":\"deadline_exceeded\""),
            "{}",
            out[1]
        );
        assert!(out[2].contains("\"error\":\"bad_request\""), "{}", out[2]);
    }

    #[test]
    fn sweep_rows_are_deterministic_across_service_geometry() {
        let lines = vec![
            r#"{"id":"d1","job":"sweep","workload":"FDJAC","family":"lru"}"#,
            r#"{"id":"d2","job":"sweep","workload":"FDJAC","family":"ws"}"#,
            r#"{"id":"d3","job":"sweep","workload":"TQL","family":"ws","points":8}"#,
        ];
        let mk = |threads| {
            service(ServeConfig {
                threads,
                ..ServeConfig::default()
            })
            .handle_batch(&lines)
        };
        let serial = mk(1);
        assert!(serial.iter().all(|l| l.contains("\"ok\":true")), "{serial:?}");
        assert_eq!(serial, mk(4), "sweep rows are byte-identical");
    }

    #[test]
    fn sweep_jobs_warm_the_per_point_cache_for_sim_jobs() {
        let s = service(ServeConfig::default());
        s.handle_batch(&[r#"{"id":"w0","job":"sweep","workload":"MAIN","family":"lru"}"#]);
        let sims_before = s.cache().stats().sim_points;
        let out = s.handle_batch(&[r#"{"id":"w1","workload":"MAIN","policy":"lru","frames":8}"#]);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert_eq!(
            s.cache().stats().sim_points,
            sims_before,
            "the sweep already materialized every LRU point"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let base = Duration::from_millis(2);
        let d1 = backoff_delay(9, 3, 1, base);
        let d2 = backoff_delay(9, 3, 2, base);
        assert_eq!(d1, backoff_delay(9, 3, 1, base), "same inputs, same delay");
        assert!(d2 >= d1, "exponential growth");
        assert!(d1 >= base && d1 < base * 2, "attempt 1 = base + jitter");
        assert_eq!(backoff_delay(9, 3, 1, Duration::ZERO), Duration::ZERO);
    }
}
