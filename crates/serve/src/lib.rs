//! `cdmm-serve`: a fault-tolerant batch simulation service.
//!
//! The crate turns the sweep harness into a long-lived daemon: clients
//! write JSONL job requests (a workload name or inline mini-FORTRAN
//! source, a policy operating point, geometry and deadline knobs), the
//! service runs them through the shared pipeline and streams one JSONL
//! response per request, in request order. Three job kinds share the
//! supervision plane: `"sim"` (the default) runs one policy point,
//! `"fleet"` schedules a multi-tenant mix, and `"sweep"` answers a
//! whole LRU or working-set operating curve from a single one-pass
//! kernel ([`cdmm_core::sweep`]), digested into one deterministic row.
//!
//! What distinguishes it from a plain loop over [`cdmm_core::prepare`]
//! is the robustness layer, spread over three modules:
//!
//! - [`request`] — the wire format: a hand-rolled flat-JSON parser that
//!   turns malformed input into typed `bad_request` responses instead of
//!   panics, plus deterministic response encoding.
//! - [`service`] — supervision: per-job panic isolation and seeded
//!   retry/backoff, per-job deadlines via [`cdmm_vmsim::CancelToken`],
//!   bounded-queue admission control, and crash-safe result caching
//!   through [`cdmm_core::ResultCache`]'s atomic-rename persistence.
//! - [`faults`] — a seeded fault injector (mid-job panics, torn writes,
//!   short reads, ENOSPC) that drives the chaos suite; production code
//!   never constructs one.
//!
//! The contract the chaos tests pin down: for a fixed request stream and
//! seed, every *successful* response is byte-identical whether or not
//! faults were injected, at any thread count — failures change which
//! rows are errors, never the bytes of the rows that succeed.
//!
//! # Examples
//!
//! ```
//! use cdmm_serve::{BatchService, ServeConfig};
//!
//! let svc = BatchService::new(ServeConfig::default()).unwrap();
//! let out = svc.handle_batch(&[
//!     r#"{"id":"t1","workload":"MAIN","policy":"cd"}"#,
//!     r#"{"id":"t2","workload":"MAIN","policy":"lru","frames":8}"#,
//! ]);
//! assert!(out[0].contains("\"ok\":true"));
//! assert!(out[1].contains("\"ok\":true"));
//! ```

pub mod faults;
pub mod request;
pub mod service;

pub use faults::{FaultInjector, FaultSite};
pub use request::{
    parse_request, ErrorKind, JobRequest, SweepFamily, SweepRequest, WorkSource,
};
pub use service::{backoff_delay, BatchService, ServeConfig, ServeStats};
