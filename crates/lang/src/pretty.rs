//! Pretty printer: turns an AST back into parseable source text.
//!
//! Instrumented programs print their directives as `!MD$` lines, so
//! `parse(to_source(p))` reproduces `p` (see the round-trip tests and the
//! property tests in the crate's test suite).

use std::fmt::Write as _;

use crate::ast::{BinOp, Directive, Expr, Program, RelOp, Stmt, UnOp};

/// Renders a program as source text.
///
/// # Examples
///
/// ```
/// let src = "PROGRAM T\nDIMENSION V(4)\nV(1) = 1.0\nEND\n";
/// let p = cdmm_lang::parse(src).unwrap();
/// let printed = cdmm_lang::to_source(&p);
/// let again = cdmm_lang::parse(&printed).unwrap();
/// assert_eq!(p, again);
/// ```
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", program.name);
    if !program.params.is_empty() {
        let list: Vec<String> = program
            .params
            .iter()
            .map(|(n, v)| format!("{n} = {v}"))
            .collect();
        let _ = writeln!(out, "PARAMETER ({})", list.join(", "));
    }
    if !program.arrays.is_empty() {
        let list: Vec<String> = program
            .arrays
            .iter()
            .map(|a| {
                let dims: Vec<String> = a.extents.iter().map(|e| e.to_string()).collect();
                format!("{}({})", a.name, dims.join(","))
            })
            .collect();
        let _ = writeln!(out, "DIMENSION {}", list.join(", "));
    }
    for stmt in &program.body {
        print_stmt(&mut out, stmt, 0);
    }
    out.push_str("END\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Do {
            label,
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            indent(out, depth);
            match label {
                Some(l) => {
                    let _ = write!(out, "DO {l} {var} = ");
                }
                None => {
                    let _ = write!(out, "DO {var} = ");
                }
            }
            print_expr(out, lo);
            out.push_str(", ");
            print_expr(out, hi);
            if let Some(s) = step {
                out.push_str(", ");
                print_expr(out, s);
            }
            out.push('\n');
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            match label {
                Some(l) => {
                    indent(out, depth);
                    let _ = writeln!(out, "{l} CONTINUE");
                }
                None => {
                    indent(out, depth);
                    out.push_str("END DO\n");
                }
            }
        }
        Stmt::Assign { target, value, .. } => {
            indent(out, depth);
            print_expr(out, target);
            out.push_str(" = ");
            print_expr(out, value);
            out.push('\n');
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            indent(out, depth);
            out.push_str("IF (");
            print_expr(out, cond);
            out.push_str(") THEN\n");
            for s in then_body {
                print_stmt(out, s, depth + 1);
            }
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("ELSE\n");
                for s in else_body {
                    print_stmt(out, s, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("END IF\n");
        }
        Stmt::Continue { label, .. } => {
            indent(out, depth);
            match label {
                Some(l) => {
                    let _ = writeln!(out, "{l} CONTINUE");
                }
                None => out.push_str("CONTINUE\n"),
            }
        }
        Stmt::Directive { dir, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "!MD$ {}", directive_source(dir));
        }
    }
}

/// Renders a directive in the paper's syntax (usable after `!MD$`).
pub fn directive_source(dir: &Directive) -> String {
    dir.to_string()
}

/// Renders an expression (exposed for diagnostics and reports).
pub fn expr_source(expr: &Expr) -> String {
    let mut s = String::new();
    print_expr(&mut s, expr);
    s
}

/// Precedence levels for parenthesization.
fn prec(expr: &Expr) -> u8 {
    match expr {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Not(..) => 3,
        Expr::Rel { .. } => 4,
        Expr::Bin {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => 5,
        Expr::Bin {
            op: BinOp::Mul | BinOp::Div,
            ..
        } => 6,
        Expr::Un { .. } => 7,
        Expr::Bin { op: BinOp::Pow, .. } => 8,
        _ => 9,
    }
}

fn print_child(out: &mut String, child: &Expr, parent_prec: u8, right: bool) {
    let child_prec = prec(child);
    // Conservative: parenthesize when the child binds no tighter than the
    // parent (except strictly-higher precedence). `right` tightens the rule
    // for left-associative operators' right operands.
    let need = child_prec < parent_prec || (child_prec == parent_prec && right);
    if need {
        out.push('(');
        print_expr(out, child);
        out.push(')');
    } else {
        print_expr(out, child);
    }
}

fn print_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Real(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Scalar(name) => out.push_str(name),
        Expr::Element { array, indices, .. } => {
            out.push_str(array);
            out.push('(');
            for (i, ix) in indices.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_expr(out, ix);
            }
            out.push(')');
        }
        Expr::Call { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        Expr::Bin { op, lhs, rhs } => {
            let p = prec(expr);
            let (sym, right_tight) = match op {
                BinOp::Add => (" + ", false),
                BinOp::Sub => (" - ", true),
                BinOp::Mul => (" * ", false),
                BinOp::Div => (" / ", true),
                BinOp::Pow => (" ** ", false),
            };
            match op {
                // `**` is right-associative: parenthesize a left child of
                // equal precedence instead.
                BinOp::Pow => {
                    print_child(out, lhs, p, true);
                    out.push_str(sym);
                    print_child(out, rhs, p, false);
                }
                _ => {
                    print_child(out, lhs, p, false);
                    out.push_str(sym);
                    print_child(out, rhs, p, right_tight);
                }
            }
        }
        Expr::Un {
            op: UnOp::Neg,
            operand,
        } => {
            out.push('-');
            print_child(out, operand, prec(expr), false);
        }
        Expr::Rel { op, lhs, rhs } => {
            let sym = match op {
                RelOp::Gt => " .GT. ",
                RelOp::Ge => " .GE. ",
                RelOp::Lt => " .LT. ",
                RelOp::Le => " .LE. ",
                RelOp::Eq => " .EQ. ",
                RelOp::Ne => " .NE. ",
            };
            let p = prec(expr);
            print_child(out, lhs, p, false);
            out.push_str(sym);
            print_child(out, rhs, p, true);
        }
        Expr::And(a, b) => {
            let p = prec(expr);
            print_child(out, a, p, false);
            out.push_str(" .AND. ");
            print_child(out, b, p, true);
        }
        Expr::Or(a, b) => {
            let p = prec(expr);
            print_child(out, a, p, false);
            out.push_str(" .OR. ");
            print_child(out, b, p, true);
        }
        Expr::Not(inner) => {
            out.push_str(".NOT. ");
            print_child(out, inner, prec(expr), false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let p = parse(src).unwrap_or_else(|e| panic!("first parse: {e}"));
        let printed = to_source(&p);
        let q =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(p, q, "round trip changed AST\nprinted:\n{printed}");
        // The printer must be a fixpoint.
        assert_eq!(printed, to_source(&q));
    }

    #[test]
    fn round_trips_simple_program() {
        round_trip("PROGRAM T\nPARAMETER (N = 4)\nDIMENSION A(N,N), V(N)\nX = 1.5\nEND\n");
    }

    #[test]
    fn round_trips_loops_and_ifs() {
        round_trip(
            "PROGRAM T\nPARAMETER (N = 4)\nDIMENSION A(N,N), V(N)\n\
             DO 10 J = 1, N\nDO 20 K = 1, N, 2\nA(K,J) = V(K) * 2.0 + A(K,J) ** 2\n20 CONTINUE\n\
             IF (V(J) .GT. 0.0 .AND. .NOT. V(J) .GE. 9.0) THEN\nV(J) = -V(J)\nELSE\nV(J) = 0.0\nEND IF\n\
             10 CONTINUE\nEND\n",
        );
    }

    #[test]
    fn round_trips_directives() {
        round_trip(
            "PROGRAM T\nPARAMETER (N = 4)\nDIMENSION A(N,N), E(N), F(N)\n\
             !MD$ ALLOCATE ((3,12) ELSE (1,2))\nDO 10 J = 1, N\n\
             !MD$ LOCK (3,E,F)\nE(J) = F(J)\n10 CONTINUE\n!MD$ UNLOCK (E,F)\nEND\n",
        );
    }

    #[test]
    fn round_trips_enddo_and_negatives() {
        round_trip(
            "PROGRAM T\nDIMENSION V(8)\nDO I = 1, 8\nV(I) = -(V(I) - 1.0) / (2.0 - V(I))\nEND DO\nEND\n",
        );
    }

    #[test]
    fn subtraction_is_not_reassociated() {
        // (a - b) - c must not print as a - b - c parsed as a - (b - c)...
        // it does: a - b - c reparses left-associatively, which is the same
        // tree. The dangerous one is a - (b - c).
        round_trip("PROGRAM T\nX = A - (B - C)\nY = (A - B) - C\nZ = A / (B / C)\nEND\n");
    }

    #[test]
    fn power_tower_round_trips() {
        round_trip("PROGRAM T\nX = 2 ** 3 ** 2\nY = (2 ** 3) ** 2\nEND\n");
    }

    #[test]
    fn real_literals_keep_a_decimal_point() {
        let p = parse("PROGRAM T\nX = 2.0\nEND").unwrap();
        let s = to_source(&p);
        assert!(s.contains("2.0"), "{s}");
    }
}
