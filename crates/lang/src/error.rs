//! Error types shared by the lexer, parser and semantic analysis.

use std::fmt;

use crate::span::Span;

/// Convenience alias used throughout the front end.
pub type LangResult<T> = Result<T, LangError>;

/// Any error produced while turning source text into a checked AST.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// The lexer hit a character it does not understand.
    UnexpectedChar { ch: char, span: Span },
    /// A numeric literal could not be parsed.
    BadNumber { text: String, span: Span },
    /// A `.OP.`-style operator was malformed.
    BadDotOperator { text: String, span: Span },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        found: String,
        expected: String,
        span: Span,
    },
    /// A `DO` loop's terminating label was never found.
    UnterminatedDo { label: u32, span: Span },
    /// A statement label was used inconsistently.
    LabelMismatch {
        expected: u32,
        found: u32,
        span: Span,
    },
    /// Input ended in the middle of a construct.
    UnexpectedEof { expected: String },
    /// Semantic error: an array was used but never declared.
    UndeclaredArray { name: String, span: Span },
    /// Semantic error: an array was referenced with the wrong rank.
    RankMismatch {
        name: String,
        declared: usize,
        used: usize,
        span: Span,
    },
    /// Semantic error: a `PARAMETER` constant is missing.
    UnknownParameter { name: String, span: Span },
    /// Semantic error: an array extent is not a positive constant.
    BadExtent { name: String, span: Span },
    /// Semantic error: the same name was declared twice.
    DuplicateDeclaration { name: String, span: Span },
    /// A directive line (`!MD$ ...`) was malformed.
    BadDirective { reason: String, span: Span },
}

impl LangError {
    /// Returns the source span the error points at, if it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            LangError::UnexpectedChar { span, .. }
            | LangError::BadNumber { span, .. }
            | LangError::BadDotOperator { span, .. }
            | LangError::UnexpectedToken { span, .. }
            | LangError::UnterminatedDo { span, .. }
            | LangError::LabelMismatch { span, .. }
            | LangError::UndeclaredArray { span, .. }
            | LangError::RankMismatch { span, .. }
            | LangError::UnknownParameter { span, .. }
            | LangError::BadExtent { span, .. }
            | LangError::DuplicateDeclaration { span, .. }
            | LangError::BadDirective { span, .. } => Some(*span),
            LangError::UnexpectedEof { .. } => None,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, span } => {
                write!(f, "{span}: unexpected character {ch:?}")
            }
            LangError::BadNumber { text, span } => {
                write!(f, "{span}: malformed numeric literal `{text}`")
            }
            LangError::BadDotOperator { text, span } => {
                write!(f, "{span}: malformed dot operator `{text}`")
            }
            LangError::UnexpectedToken {
                found,
                expected,
                span,
            } => {
                write!(f, "{span}: expected {expected}, found {found}")
            }
            LangError::UnterminatedDo { label, span } => {
                write!(
                    f,
                    "{span}: DO loop terminated by label {label} never closed"
                )
            }
            LangError::LabelMismatch {
                expected,
                found,
                span,
            } => {
                write!(
                    f,
                    "{span}: expected statement label {expected}, found {found}"
                )
            }
            LangError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            LangError::UndeclaredArray { name, span } => {
                write!(f, "{span}: array `{name}` referenced but never declared")
            }
            LangError::RankMismatch {
                name,
                declared,
                used,
                span,
            } => {
                write!(
                    f,
                    "{span}: array `{name}` declared with rank {declared} but used with {used} subscripts"
                )
            }
            LangError::UnknownParameter { name, span } => {
                write!(f, "{span}: unknown PARAMETER constant `{name}`")
            }
            LangError::BadExtent { name, span } => {
                write!(
                    f,
                    "{span}: array `{name}` has a non-positive or non-constant extent"
                )
            }
            LangError::DuplicateDeclaration { name, span } => {
                write!(f, "{span}: `{name}` declared more than once")
            }
            LangError::BadDirective { reason, span } => {
                write!(f, "{span}: malformed memory directive: {reason}")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = LangError::UndeclaredArray {
            name: "A".into(),
            span: Span::new(0, 1, 12),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 12"), "{msg}");
        assert!(msg.contains('A'));
    }

    #[test]
    fn span_accessor() {
        let e = LangError::UnexpectedEof {
            expected: "END".into(),
        };
        assert!(e.span().is_none());
        let e = LangError::BadNumber {
            text: "1e".into(),
            span: Span::new(3, 5, 2),
        };
        assert_eq!(e.span().unwrap().line, 2);
    }
}
