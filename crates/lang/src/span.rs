//! Source locations for diagnostics.

use std::fmt;

/// A half-open byte range into the original source text, plus the line it
/// starts on (1-based).
///
/// Spans exist purely for diagnostics; AST equality ignores them via the
/// manual `PartialEq` implementations on the nodes that carry them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on `line`.
    pub const fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A zero-width placeholder span for synthesized nodes.
    pub const fn synthetic() -> Self {
        Span {
            start: 0,
            end: 0,
            line: 0,
        }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if self.line == 0 {
                other.line
            } else {
                self.line.min(other.line)
            },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<synthetic>")
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(4, 10, 2);
        let b = Span::new(12, 20, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 4);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 2);
    }

    #[test]
    fn merge_with_synthetic_keeps_real_line() {
        let a = Span::synthetic();
        let b = Span::new(1, 5, 7);
        assert_eq!(a.merge(b).line, 7);
    }

    #[test]
    fn display_formats_line() {
        assert_eq!(Span::new(0, 1, 3).to_string(), "line 3");
        assert_eq!(Span::synthetic().to_string(), "<synthetic>");
    }
}
