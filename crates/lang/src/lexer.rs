//! Hand-written lexer for the mini-FORTRAN language.
//!
//! The lexer is line-oriented like FORTRAN itself: newlines terminate
//! statements, full-line comments start with `C `/`c `/`*` in column one or
//! with `!` anywhere, and `!MD$` lines are surfaced as
//! [`TokenKind::DirectiveLine`] so the parser can attach memory directives
//! to the statement stream.

use crate::error::{LangError, LangResult};
use crate::span::Span;
use crate::token::{DotOp, Token, TokenKind};

/// Converts `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Examples
///
/// ```
/// use cdmm_lang::lexer::lex;
/// use cdmm_lang::token::TokenKind;
/// let toks = lex("DO 10 I = 1, N").unwrap();
/// assert!(matches!(toks[0].kind, TokenKind::Ident(ref s) if s == "DO"));
/// assert!(matches!(toks[1].kind, TokenKind::Int(10)));
/// ```
pub fn lex(src: &str) -> LangResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    at_line_start: bool,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            at_line_start: true,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = Span::new(start, self.pos, self.line);
        self.tokens.push(Token { kind, span });
    }

    fn last_is_newline_or_start(&self) -> bool {
        matches!(
            self.tokens.last().map(|t| &t.kind),
            None | Some(TokenKind::Newline) | Some(TokenKind::DirectiveLine(_))
        )
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b'\n' => {
                    self.bump();
                    // Collapse consecutive newlines.
                    if !self.last_is_newline_or_start() {
                        self.push(TokenKind::Newline, start);
                    }
                    self.line += 1;
                    self.at_line_start = true;
                }
                b';' => {
                    self.bump();
                    if !self.last_is_newline_or_start() {
                        self.push(TokenKind::Newline, start);
                    }
                    self.at_line_start = true;
                }
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'!' => {
                    self.lex_bang_line(start)?;
                }
                b'C' | b'c' | b'*' if self.at_line_start && self.is_comment_line() => {
                    self.skip_to_eol();
                }
                b'0'..=b'9' => {
                    let line_start = self.at_line_start;
                    self.at_line_start = false;
                    self.lex_number(start, line_start)?;
                }
                b'.' => {
                    self.at_line_start = false;
                    // Could be `.5`, `.GT.` etc.
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number(start, false)?;
                    } else {
                        self.lex_dot_op(start)?;
                    }
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    self.at_line_start = false;
                    self.lex_ident(start);
                }
                b'(' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::RParen, start);
                }
                b',' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::Comma, start);
                }
                b'=' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::Equals, start);
                }
                b'+' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::Plus, start);
                }
                b'-' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::Minus, start);
                }
                b'*' => {
                    self.bump();
                    self.at_line_start = false;
                    if self.peek() == Some(b'*') {
                        self.bump();
                        self.push(TokenKind::StarStar, start);
                    } else {
                        self.push(TokenKind::Star, start);
                    }
                }
                b'/' => {
                    self.bump();
                    self.at_line_start = false;
                    self.push(TokenKind::Slash, start);
                }
                other => {
                    return Err(LangError::UnexpectedChar {
                        ch: other as char,
                        span: Span::new(start, start + 1, self.line),
                    });
                }
            }
        }
        if !self.last_is_newline_or_start() {
            let p = self.pos;
            self.push(TokenKind::Newline, p);
        }
        let p = self.pos;
        self.push(TokenKind::Eof, p);
        Ok(self.tokens)
    }

    /// True when the rest of the line after a leading `C`/`*` looks like a
    /// classic fixed-form comment (the next character is whitespace or the
    /// line is just the marker). `CONDUCT = 1.0` must not be a comment.
    fn is_comment_line(&self) -> bool {
        if self.bytes[self.pos] == b'*' {
            return true;
        }
        matches!(
            self.peek2(),
            None | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        )
    }

    fn skip_to_eol(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Handles `!` lines: either a `!MD$` directive or a plain comment.
    fn lex_bang_line(&mut self, start: usize) -> LangResult<()> {
        let rest = &self.src[self.pos..];
        if rest.len() >= 4 && rest[..4].eq_ignore_ascii_case("!MD$") {
            self.pos += 4;
            let payload_start = self.pos;
            self.skip_to_eol();
            let payload = self.src[payload_start..self.pos].trim().to_string();
            if payload.is_empty() {
                return Err(LangError::BadDirective {
                    reason: "empty !MD$ line".into(),
                    span: Span::new(start, self.pos, self.line),
                });
            }
            // A directive line terminates any open statement first.
            if !self.last_is_newline_or_start() {
                self.push(TokenKind::Newline, start);
            }
            self.push(TokenKind::DirectiveLine(payload), start);
            self.at_line_start = true;
        } else {
            self.skip_to_eol();
        }
        Ok(())
    }

    fn lex_number(&mut self, start: usize, line_start: bool) -> LangResult<()> {
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    // `1.` is a real, but `1.GT.` is integer then dot-op:
                    // look ahead for an alphabetic char right after the dot.
                    if self.peek2().is_some_and(|c| c.is_ascii_alphabetic()) {
                        break;
                    }
                    saw_dot = true;
                    self.bump();
                }
                b'E' | b'e' | b'D' | b'd'
                    if !saw_exp
                        && self
                            .peek2()
                            .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-') =>
                {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos, self.line);
        if saw_dot || saw_exp {
            let norm = text.replace(['D', 'd'], "E");
            let v: f64 = norm.parse().map_err(|_| LangError::BadNumber {
                text: text.into(),
                span,
            })?;
            self.push(TokenKind::Real(v), start);
        } else {
            let v: i64 = text.parse().map_err(|_| LangError::BadNumber {
                text: text.into(),
                span,
            })?;
            if line_start {
                if v < 0 || v > u32::MAX as i64 {
                    return Err(LangError::BadNumber {
                        text: text.into(),
                        span,
                    });
                }
                self.push(TokenKind::Label(v as u32), start);
            } else {
                self.push(TokenKind::Int(v), start);
            }
        }
        Ok(())
    }

    fn lex_dot_op(&mut self, start: usize) -> LangResult<()> {
        self.bump(); // leading dot
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
            self.bump();
        }
        if self.peek() != Some(b'.') {
            return Err(LangError::BadDotOperator {
                text: self.src[start..self.pos].into(),
                span: Span::new(start, self.pos, self.line),
            });
        }
        self.bump(); // trailing dot
        let text = self.src[start..self.pos].to_ascii_uppercase();
        let op = match text.as_str() {
            ".GT." => DotOp::Gt,
            ".GE." => DotOp::Ge,
            ".LT." => DotOp::Lt,
            ".LE." => DotOp::Le,
            ".EQ." => DotOp::Eq,
            ".NE." => DotOp::Ne,
            ".AND." => DotOp::And,
            ".OR." => DotOp::Or,
            ".NOT." => DotOp::Not,
            _ => {
                return Err(LangError::BadDotOperator {
                    text,
                    span: Span::new(start, self.pos, self.line),
                });
            }
        };
        self.push(TokenKind::DotOp(op), start);
        Ok(())
    }

    fn lex_ident(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let text = self.src[start..self.pos].to_ascii_uppercase();
        self.push(TokenKind::Ident(text), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_do_statement() {
        let k = kinds("DO 10 I = 1, N");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("DO".into()),
                TokenKind::Int(10),
                TokenKind::Ident("I".into()),
                TokenKind::Equals,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Ident("N".into()),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn label_only_at_line_start() {
        let k = kinds("10 CONTINUE");
        assert_eq!(k[0], TokenKind::Label(10));
        let k = kinds("X = 10");
        assert_eq!(k[2], TokenKind::Int(10));
    }

    #[test]
    fn reals_and_exponents() {
        let k = kinds("X = 1.5 + 2.0E-3 + .25 + 3D0");
        let reals: Vec<f64> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Real(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(reals, vec![1.5, 2.0e-3, 0.25, 3.0]);
    }

    #[test]
    fn integer_followed_by_dot_op() {
        let k = kinds("IF (I .GT. 1.AND. J .LT. 2) X = 0");
        assert!(k.contains(&TokenKind::DotOp(DotOp::And)));
        assert!(k.contains(&TokenKind::Int(1)));
    }

    #[test]
    fn dot_ops() {
        let k = kinds("A .GT. B .AND. .NOT. C .NE. D");
        let ops: Vec<DotOp> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::DotOp(op) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec![DotOp::Gt, DotOp::And, DotOp::Not, DotOp::Ne]);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("C this is a comment\n* so is this\nX = 1 ! trailing\nY = 2");
        assert!(k
            .iter()
            .all(|t| !matches!(t, TokenKind::Ident(s) if s == "THIS")));
        assert!(k.contains(&TokenKind::Ident("X".into())));
        assert!(k.contains(&TokenKind::Ident("Y".into())));
        assert!(!k.contains(&TokenKind::Ident("TRAILING".into())));
    }

    #[test]
    fn identifier_starting_with_c_is_not_comment() {
        let k = kinds("CONDUCT = 1.0");
        assert_eq!(k[0], TokenKind::Ident("CONDUCT".into()));
    }

    #[test]
    fn directive_line_is_surfaced() {
        let k = kinds("X = 1\n!MD$ ALLOCATE ((3,12))\nY = 2");
        assert!(k
            .iter()
            .any(|t| matches!(t, TokenKind::DirectiveLine(p) if p == "ALLOCATE ((3,12))")));
    }

    #[test]
    fn empty_directive_is_error() {
        assert!(matches!(
            lex("!MD$   \n"),
            Err(LangError::BadDirective { .. })
        ));
    }

    #[test]
    fn power_operator() {
        let k = kinds("Y = X ** 2 * 3");
        assert!(k.contains(&TokenKind::StarStar));
        assert!(k.contains(&TokenKind::Star));
    }

    #[test]
    fn unexpected_char_reports_line() {
        let err = lex("X = 1\nY = #").unwrap_err();
        match err {
            LangError::UnexpectedChar { ch, span } => {
                assert_eq!(ch, '#');
                assert_eq!(span.line, 2);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn semicolons_split_statements() {
        let k = kinds("X = 1; Y = 2");
        let newlines = k.iter().filter(|t| matches!(t, TokenKind::Newline)).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn case_insensitive_identifiers() {
        let k = kinds("do 10 i = 1, n");
        assert_eq!(k[0], TokenKind::Ident("DO".into()));
        assert_eq!(k[2], TokenKind::Ident("I".into()));
    }
}
