//! Token definitions for the mini-FORTRAN lexer.

use std::fmt;

use crate::span::Span;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (and its payload, if any).
    pub kind: TokenKind,
    /// Where the token came from.
    pub span: Span,
}

/// The kinds of token the lexer produces.
///
/// Keywords are recognized case-insensitively and normalized; identifiers
/// are upper-cased, matching FORTRAN's case insensitivity.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword, upper-cased (`A`, `DO`, `FJAC`).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A real literal (`1.5`, `2.0E-3`).
    Real(f64),
    /// A statement label at the beginning of a line.
    Label(u32),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `=`.
    Equals,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `**`.
    StarStar,
    /// A relational dot operator: `.GT.` etc.
    DotOp(DotOp),
    /// End of statement (newline or `;`).
    Newline,
    /// A memory-directive sentinel line: `!MD$ <payload>`. The payload is
    /// re-lexed by the directive parser.
    DirectiveLine(String),
    /// End of input.
    Eof,
}

/// FORTRAN dot operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DotOp {
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
    /// `.NOT.`
    Not,
}

impl fmt::Display for DotOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DotOp::Gt => ".GT.",
            DotOp::Ge => ".GE.",
            DotOp::Lt => ".LT.",
            DotOp::Le => ".LE.",
            DotOp::Eq => ".EQ.",
            DotOp::Ne => ".NE.",
            DotOp::And => ".AND.",
            DotOp::Or => ".OR.",
            DotOp::Not => ".NOT.",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Real(v) => write!(f, "real `{v}`"),
            TokenKind::Label(l) => write!(f, "label `{l}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Equals => f.write_str("`=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::StarStar => f.write_str("`**`"),
            TokenKind::DotOp(op) => write!(f, "`{op}`"),
            TokenKind::Newline => f.write_str("end of statement"),
            TokenKind::DirectiveLine(_) => f.write_str("memory directive"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

impl TokenKind {
    /// Returns true if this token is the identifier `word` (already
    /// upper-cased by the lexer).
    pub fn is_kw(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check_is_exact() {
        assert!(TokenKind::Ident("DO".into()).is_kw("DO"));
        assert!(!TokenKind::Ident("DOT".into()).is_kw("DO"));
        assert!(!TokenKind::Int(3).is_kw("DO"));
    }

    #[test]
    fn dot_op_display_round_trips() {
        for (op, txt) in [
            (DotOp::Gt, ".GT."),
            (DotOp::And, ".AND."),
            (DotOp::Not, ".NOT."),
        ] {
            assert_eq!(op.to_string(), txt);
        }
    }
}
