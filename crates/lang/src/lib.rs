//! Mini-FORTRAN front end for the CDMM reproduction.
//!
//! The SOSP 1985 paper analyses FORTRAN numerical programs at the source
//! level. This crate implements a small FORTRAN-like language that covers
//! everything the locality analysis consumes:
//!
//! - `DIMENSION` declarations for one- and two-dimensional arrays,
//! - `PARAMETER` integer constants used for sizing,
//! - labelled and `END DO`-terminated `DO` loops (arbitrarily nested),
//! - array-element and scalar assignments with full arithmetic expressions,
//! - block `IF`/`ELSE` with relational and logical operators,
//! - memory directives (`ALLOCATE`, `LOCK`, `UNLOCK`) written as `!MD$`
//!   sentinel lines, so that instrumented programs pretty-print to text and
//!   re-parse to the same AST.
//!
//! # Examples
//!
//! ```
//! let src = "
//! PROGRAM DEMO
//! PARAMETER (N = 8)
//! DIMENSION A(N,N), V(N)
//! DO 10 J = 1, N
//!   DO 20 K = 1, N
//!     A(K,J) = V(K) * 2.0
//! 20 CONTINUE
//! 10 CONTINUE
//! END
//! ";
//! let program = cdmm_lang::parse(src).expect("parses");
//! assert_eq!(program.name, "DEMO");
//! assert_eq!(program.arrays.len(), 2);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{ArrayDecl, BinOp, Directive, Expr, Program, RelOp, Stmt, UnOp};
pub use error::{LangError, LangResult};
pub use parser::parse;
pub use pretty::to_source;
pub use sema::{analyze, ArrayShape, SymbolTable};
pub use span::Span;
