//! Abstract syntax tree for the mini-FORTRAN language, including the memory
//! directives from the paper (Section 3).

use std::fmt;

use crate::span::Span;

/// A source span that compares equal to any other span.
///
/// AST nodes carry their location for diagnostics, but two programs that
/// differ only in layout should compare equal — directive insertion
/// synthesizes nodes with no real source position.
#[derive(Debug, Clone, Copy, Default)]
pub struct Loc(pub Span);

impl PartialEq for Loc {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for Loc {}

impl From<Span> for Loc {
    fn from(s: Span) -> Self {
        Loc(s)
    }
}

/// A complete program: name, constants, array declarations and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The `PROGRAM <name>` identifier.
    pub name: String,
    /// `PARAMETER (NAME = value)` constants, in declaration order.
    pub params: Vec<(String, i64)>,
    /// `DIMENSION` declarations, in declaration order (this order also
    /// fixes the virtual-memory layout downstream).
    pub arrays: Vec<ArrayDecl>,
    /// Executable statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Looks up an array declaration by (upper-cased) name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Looks up a `PARAMETER` constant by name.
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// One array declared in a `DIMENSION` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Upper-cased array name.
    pub name: String,
    /// Declared extents; rank 1 (vector) or 2 (matrix) after `sema`.
    pub extents: Vec<Extent>,
    /// Where the declaration appeared.
    pub loc: Loc,
}

/// An array extent: a literal or a `PARAMETER` reference, possibly scaled
/// (`2*N` or `N` or `100`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extent {
    /// A literal extent such as `100`.
    Lit(i64),
    /// A named constant such as `N`.
    Param(String),
    /// `factor * name`, e.g. `2*N` — common when sizing workspace arrays.
    Scaled(i64, String),
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extent::Lit(v) => write!(f, "{v}"),
            Extent::Param(p) => f.write_str(p),
            Extent::Scaled(k, p) => write!(f, "{k}*{p}"),
        }
    }
}

/// An executable statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A `DO` loop, either label-terminated (`DO 10 I = ...` / `10
    /// CONTINUE`) or `END DO`-terminated.
    Do {
        /// The terminating label, if the loop was written with one.
        label: Option<u32>,
        /// Loop control variable (upper-cased).
        var: String,
        /// First value of the control variable.
        lo: Expr,
        /// Last value (inclusive, FORTRAN-77 semantics).
        hi: Expr,
        /// Step, defaulting to 1 when absent.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location of the `DO` keyword.
        loc: Loc,
    },
    /// `target = value`. The target is a scalar or an array element.
    Assign {
        /// Either [`Expr::Scalar`] or [`Expr::Element`].
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        loc: Loc,
    },
    /// Block `IF (cond) THEN ... [ELSE ...] END IF`, or the one-line
    /// logical IF `IF (cond) stmt` (parsed as a block with one statement).
    If {
        /// Controlling condition.
        cond: Expr,
        /// Statements executed when `cond` is true.
        then_body: Vec<Stmt>,
        /// Statements executed when `cond` is false (may be empty).
        else_body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// A free-standing `CONTINUE` (no-op).
    Continue {
        /// The statement label, if any.
        label: Option<u32>,
        /// Source location.
        loc: Loc,
    },
    /// A memory directive inserted by the compiler (or written as an
    /// `!MD$` line).
    Directive {
        /// The directive payload.
        dir: Directive,
        /// Source location.
        loc: Loc,
    },
}

impl Stmt {
    /// Returns the source location of this statement.
    pub fn loc(&self) -> Span {
        match self {
            Stmt::Do { loc, .. }
            | Stmt::Assign { loc, .. }
            | Stmt::If { loc, .. }
            | Stmt::Continue { loc, .. }
            | Stmt::Directive { loc, .. } => loc.0,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable reference (upper-cased name).
    Scalar(String),
    /// Array element reference `A(i)` or `A(i,j)`.
    ///
    /// Until [`crate::sema::analyze`] runs, calls to intrinsic functions
    /// also parse as `Element`; `sema` rewrites them to [`Expr::Call`].
    Element {
        /// Array name.
        array: String,
        /// Subscript expressions (1 or 2 after `sema`).
        indices: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Intrinsic function call (`SQRT`, `ABS`, `MOD`, ...).
    Call {
        /// Intrinsic name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation (negation).
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Relational comparison (`.GT.` etc.), producing a logical value.
    Rel {
        /// Comparison operator.
        op: RelOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Int(_) | Expr::Real(_) | Expr::Scalar(_) => {}
            Expr::Element { indices, .. } => {
                for ix in indices {
                    ix.walk(f);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Bin { lhs, rhs, .. } | Expr::Rel { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Un { operand, .. } | Expr::Not(operand) => operand.walk(f),
        }
    }

    /// Returns the set of scalar variable names mentioned anywhere in the
    /// expression (subscripts included), in first-appearance order.
    pub fn free_scalars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Scalar(name) = e {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
}

/// Relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
}

/// One prioritized request inside an `ALLOCATE` directive: "give me
/// `pages` page frames" tagged with priority index `pi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocArg {
    /// Priority index (paper: `PI`). Larger PI = outer loop = tried first;
    /// `PI = 1` is the innermost loop and *must* be satisfiable.
    pub pi: u32,
    /// Requested allocation in pages (paper: `X`).
    pub pages: u64,
}

/// A memory directive (paper Section 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `ALLOCATE ((PI1,X1) ELSE (PI2,X2) ELSE ...)` — prioritized memory
    /// requests, outermost locality first.
    Allocate {
        /// The request list, ordered as written (descending `pi`).
        args: Vec<AllocArg>,
    },
    /// `LOCK (PJ, A, B, ...)` — softly pin the currently resident pages of
    /// the named arrays with release priority `pj`.
    Lock {
        /// Release priority (paper: `PJ`); larger PJ is released first.
        pj: u32,
        /// Arrays whose active pages should be pinned.
        arrays: Vec<String>,
    },
    /// `UNLOCK (A, B, ...)` — release any pages of the named arrays still
    /// locked.
    Unlock {
        /// Arrays to unpin.
        arrays: Vec<String>,
    },
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Allocate { args } => {
                f.write_str("ALLOCATE (")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ELSE ")?;
                    }
                    write!(f, "({},{})", a.pi, a.pages)?;
                }
                f.write_str(")")
            }
            Directive::Lock { pj, arrays } => {
                write!(f, "LOCK ({pj}")?;
                for a in arrays {
                    write!(f, ",{a}")?;
                }
                f.write_str(")")
            }
            Directive::Unlock { arrays } => {
                f.write_str("UNLOCK (")?;
                for (i, a) in arrays.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str(a)?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_compares_equal_regardless_of_span() {
        let a = Loc(Span::new(0, 3, 1));
        let b = Loc(Span::new(99, 120, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn free_scalars_deduplicates_in_order() {
        // I + A(I, J) * J + I
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::Scalar("I".into())),
            rhs: Box::new(Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Bin {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Element {
                        array: "A".into(),
                        indices: vec![Expr::Scalar("I".into()), Expr::Scalar("J".into())],
                        loc: Loc::default(),
                    }),
                    rhs: Box::new(Expr::Scalar("J".into())),
                }),
                rhs: Box::new(Expr::Scalar("I".into())),
            }),
        };
        assert_eq!(e.free_scalars(), vec!["I".to_string(), "J".to_string()]);
    }

    #[test]
    fn directive_display_matches_paper_syntax() {
        let d = Directive::Allocate {
            args: vec![AllocArg { pi: 3, pages: 12 }, AllocArg { pi: 1, pages: 2 }],
        };
        assert_eq!(d.to_string(), "ALLOCATE ((3,12) ELSE (1,2))");
        let d = Directive::Lock {
            pj: 3,
            arrays: vec!["A".into(), "B".into()],
        };
        assert_eq!(d.to_string(), "LOCK (3,A,B)");
        let d = Directive::Unlock {
            arrays: vec!["A".into(), "B".into()],
        };
        assert_eq!(d.to_string(), "UNLOCK (A,B)");
    }

    #[test]
    fn program_lookup_helpers() {
        let p = Program {
            name: "T".into(),
            params: vec![("N".into(), 10)],
            arrays: vec![ArrayDecl {
                name: "A".into(),
                extents: vec![Extent::Param("N".into())],
                loc: Loc::default(),
            }],
            body: vec![],
        };
        assert_eq!(p.param("N"), Some(10));
        assert!(p.param("M").is_none());
        assert!(p.array("A").is_some());
        assert!(p.array("B").is_none());
    }
}
