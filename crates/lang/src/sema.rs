//! Semantic analysis: resolve `PARAMETER` constants and array shapes,
//! rewrite intrinsic calls, and check array usage.
//!
//! FORTRAN's `F(I)` syntax is ambiguous between an array element and a
//! function call; the parser always produces [`Expr::Element`], and this
//! pass rewrites references to undeclared names that match a known
//! intrinsic into [`Expr::Call`]. Anything else undeclared is an error.

use std::collections::BTreeMap;

use crate::ast::{Expr, Extent, Program, Stmt};
use crate::error::{LangError, LangResult};
use crate::span::Span;

/// Intrinsic functions the interpreter understands.
pub const INTRINSICS: &[&str] = &[
    "ABS", "SQRT", "EXP", "ALOG", "SIN", "COS", "MOD", "MIN", "MAX", "FLOAT", "INT", "SIGN",
];

/// The resolved shape of one declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayShape {
    /// Array name (upper-cased).
    pub name: String,
    /// Number of rows `M` (the contiguous, column-major direction).
    pub rows: u64,
    /// Number of columns `N`; 1 for vectors.
    pub cols: u64,
    /// Declared rank: 1 for `V(N)`, 2 for `A(M,N)`.
    pub rank: usize,
}

impl ArrayShape {
    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        self.rows * self.cols
    }
}

/// Symbol information produced by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymbolTable {
    /// Declared arrays keyed by name, preserving declaration order in
    /// [`SymbolTable::order`].
    pub arrays: BTreeMap<String, ArrayShape>,
    /// Array names in declaration order (fixes the address-space layout).
    pub order: Vec<String>,
    /// Resolved `PARAMETER` constants.
    pub params: BTreeMap<String, i64>,
}

impl SymbolTable {
    /// Looks up a declared array shape.
    pub fn shape(&self, name: &str) -> Option<&ArrayShape> {
        self.arrays.get(name)
    }

    /// Total elements over all declared arrays (the program's data virtual
    /// space before paging).
    pub fn total_elements(&self) -> u64 {
        self.arrays.values().map(ArrayShape::elements).sum()
    }
}

/// Runs semantic analysis on a parsed program.
///
/// On success the returned [`SymbolTable`] describes every declared array,
/// and the program has been rewritten in place so that intrinsic calls are
/// [`Expr::Call`] nodes.
///
/// # Examples
///
/// ```
/// let mut p = cdmm_lang::parse(
///     "PROGRAM T\nPARAMETER (N = 8)\nDIMENSION A(N,N)\nA(1,1) = SQRT(2.0)\nEND",
/// ).unwrap();
/// let syms = cdmm_lang::analyze(&mut p).unwrap();
/// assert_eq!(syms.shape("A").unwrap().rows, 8);
/// ```
pub fn analyze(program: &mut Program) -> LangResult<SymbolTable> {
    let mut syms = SymbolTable::default();

    for (name, value) in &program.params {
        if syms.params.insert(name.clone(), *value).is_some() {
            return Err(LangError::DuplicateDeclaration {
                name: name.clone(),
                span: Span::synthetic(),
            });
        }
    }

    for decl in &program.arrays {
        if decl.extents.is_empty() || decl.extents.len() > 2 {
            return Err(LangError::BadExtent {
                name: decl.name.clone(),
                span: decl.loc.0,
            });
        }
        let mut dims = Vec::with_capacity(2);
        for e in &decl.extents {
            let v = resolve_extent(e, &syms, &decl.name, decl.loc.0)?;
            dims.push(v);
        }
        let shape = ArrayShape {
            name: decl.name.clone(),
            rows: dims[0],
            cols: if dims.len() == 2 { dims[1] } else { 1 },
            rank: dims.len(),
        };
        if syms.arrays.insert(decl.name.clone(), shape).is_some() {
            return Err(LangError::DuplicateDeclaration {
                name: decl.name.clone(),
                span: decl.loc.0,
            });
        }
        syms.order.push(decl.name.clone());
    }

    let mut body = std::mem::take(&mut program.body);
    for stmt in &mut body {
        check_stmt(stmt, &syms)?;
    }
    program.body = body;
    Ok(syms)
}

fn resolve_extent(e: &Extent, syms: &SymbolTable, array: &str, span: Span) -> LangResult<u64> {
    let v = match e {
        Extent::Lit(v) => *v,
        Extent::Param(p) => *syms
            .params
            .get(p)
            .ok_or_else(|| LangError::UnknownParameter {
                name: p.clone(),
                span,
            })?,
        Extent::Scaled(k, p) => {
            let base = *syms
                .params
                .get(p)
                .ok_or_else(|| LangError::UnknownParameter {
                    name: p.clone(),
                    span,
                })?;
            k.checked_mul(base).unwrap_or(-1)
        }
    };
    if v <= 0 {
        return Err(LangError::BadExtent {
            name: array.to_string(),
            span,
        });
    }
    Ok(v as u64)
}

fn check_stmt(stmt: &mut Stmt, syms: &SymbolTable) -> LangResult<()> {
    match stmt {
        Stmt::Do {
            lo, hi, step, body, ..
        } => {
            check_expr(lo, syms)?;
            check_expr(hi, syms)?;
            if let Some(s) = step {
                check_expr(s, syms)?;
            }
            for s in body {
                check_stmt(s, syms)?;
            }
            Ok(())
        }
        Stmt::Assign { target, value, .. } => {
            check_target(target, syms)?;
            check_expr(value, syms)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            check_expr(cond, syms)?;
            for s in then_body.iter_mut().chain(else_body.iter_mut()) {
                check_stmt(s, syms)?;
            }
            Ok(())
        }
        Stmt::Continue { .. } | Stmt::Directive { .. } => Ok(()),
    }
}

/// Assignment targets must be scalars or *declared* array elements; an
/// intrinsic name on the left-hand side makes no sense.
fn check_target(target: &mut Expr, syms: &SymbolTable) -> LangResult<()> {
    match target {
        Expr::Scalar(_) => Ok(()),
        Expr::Element {
            array,
            indices,
            loc,
        } => {
            let shape = syms
                .shape(array)
                .ok_or_else(|| LangError::UndeclaredArray {
                    name: array.clone(),
                    span: loc.0,
                })?;
            if shape.rank != indices.len() {
                return Err(LangError::RankMismatch {
                    name: array.clone(),
                    declared: shape.rank,
                    used: indices.len(),
                    span: loc.0,
                });
            }
            for ix in indices {
                check_expr(ix, syms)?;
            }
            Ok(())
        }
        other => Err(LangError::UnexpectedToken {
            found: format!("{other:?}"),
            expected: "assignable target".into(),
            span: Span::synthetic(),
        }),
    }
}

fn check_expr(expr: &mut Expr, syms: &SymbolTable) -> LangResult<()> {
    match expr {
        Expr::Int(_) | Expr::Real(_) | Expr::Scalar(_) => Ok(()),
        Expr::Element {
            array,
            indices,
            loc,
        } => {
            if let Some(shape) = syms.shape(array) {
                if shape.rank != indices.len() {
                    return Err(LangError::RankMismatch {
                        name: array.clone(),
                        declared: shape.rank,
                        used: indices.len(),
                        span: loc.0,
                    });
                }
                for ix in indices.iter_mut() {
                    check_expr(ix, syms)?;
                }
                Ok(())
            } else if INTRINSICS.contains(&array.as_str()) {
                // Rewrite to an intrinsic call.
                let mut args = std::mem::take(indices);
                for a in args.iter_mut() {
                    check_expr(a, syms)?;
                }
                let name = std::mem::take(array);
                let loc = *loc;
                *expr = Expr::Call { name, args, loc };
                Ok(())
            } else {
                Err(LangError::UndeclaredArray {
                    name: array.clone(),
                    span: loc.0,
                })
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                check_expr(a, syms)?;
            }
            Ok(())
        }
        Expr::Bin { lhs, rhs, .. } | Expr::Rel { lhs, rhs, .. } => {
            check_expr(lhs, syms)?;
            check_expr(rhs, syms)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            check_expr(a, syms)?;
            check_expr(b, syms)
        }
        Expr::Un { operand, .. } | Expr::Not(operand) => check_expr(operand, syms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn analyzed(src: &str) -> (Program, SymbolTable) {
        let mut p = parse(src).unwrap();
        let syms = analyze(&mut p).unwrap();
        (p, syms)
    }

    #[test]
    fn shapes_resolve_parameters() {
        let (_, syms) =
            analyzed("PROGRAM T\nPARAMETER (M = 6, N = 4)\nDIMENSION A(M,N), V(N), W(2*M)\nEND");
        let a = syms.shape("A").unwrap();
        assert_eq!((a.rows, a.cols, a.rank), (6, 4, 2));
        let v = syms.shape("V").unwrap();
        assert_eq!((v.rows, v.cols, v.rank), (4, 1, 1));
        let w = syms.shape("W").unwrap();
        assert_eq!((w.rows, w.cols, w.rank), (12, 1, 1));
        assert_eq!(syms.order, vec!["A", "V", "W"]);
        assert_eq!(syms.total_elements(), 24 + 4 + 12);
    }

    #[test]
    fn intrinsic_call_is_rewritten() {
        let (p, _) = analyzed("PROGRAM T\nDIMENSION V(4)\nV(1) = SQRT(ABS(X))\nEND");
        match &p.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Call { name, args, .. } => {
                    assert_eq!(name, "SQRT");
                    assert!(matches!(&args[0], Expr::Call { name, .. } if name == "ABS"));
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undeclared_array_is_error() {
        let mut p = parse("PROGRAM T\nDIMENSION V(4)\nV(1) = B(2)\nEND").unwrap();
        assert!(matches!(
            analyze(&mut p),
            Err(LangError::UndeclaredArray { name, .. }) if name == "B"
        ));
    }

    #[test]
    fn undeclared_assignment_target_is_error() {
        let mut p = parse("PROGRAM T\nB(1) = 2.0\nEND").unwrap();
        assert!(analyze(&mut p).is_err());
    }

    #[test]
    fn rank_mismatch_is_error() {
        let mut p = parse("PROGRAM T\nDIMENSION A(4,4)\nA(1) = 0.0\nEND").unwrap();
        assert!(matches!(
            analyze(&mut p),
            Err(LangError::RankMismatch {
                declared: 2,
                used: 1,
                ..
            })
        ));
    }

    #[test]
    fn unknown_parameter_is_error() {
        let mut p = parse("PROGRAM T\nDIMENSION A(N)\nEND").unwrap();
        assert!(matches!(
            analyze(&mut p),
            Err(LangError::UnknownParameter { name, .. }) if name == "N"
        ));
    }

    #[test]
    fn non_positive_extent_is_error() {
        let mut p = parse("PROGRAM T\nPARAMETER (N = 0)\nDIMENSION A(N)\nEND").unwrap();
        assert!(matches!(analyze(&mut p), Err(LangError::BadExtent { .. })));
    }

    #[test]
    fn duplicate_array_is_error() {
        let mut p = parse("PROGRAM T\nDIMENSION A(4), A(5)\nEND").unwrap();
        assert!(matches!(
            analyze(&mut p),
            Err(LangError::DuplicateDeclaration { .. })
        ));
    }

    #[test]
    fn three_dimensional_array_is_rejected() {
        let mut p = parse("PROGRAM T\nDIMENSION A(2,2,2)\nA(1,1,1) = 0.0\nEND").unwrap();
        assert!(matches!(analyze(&mut p), Err(LangError::BadExtent { .. })));
    }

    #[test]
    fn loops_and_ifs_are_checked_recursively() {
        let mut p = parse(
            "PROGRAM T\nDIMENSION V(4)\nDO 10 I = 1, 4\nIF (V(I) .GT. 0.0) THEN\nV(I) = Q(I)\nENDIF\n10 CONTINUE\nEND",
        )
        .unwrap();
        assert!(matches!(
            analyze(&mut p),
            Err(LangError::UndeclaredArray { name, .. }) if name == "Q"
        ));
    }
}
