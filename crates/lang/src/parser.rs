//! Recursive-descent parser for the mini-FORTRAN language.
//!
//! The grammar (informally):
//!
//! ```text
//! program   := PROGRAM name NL decl* stmt* END
//! decl      := PARAMETER ( NAME = int {, NAME = int} )
//!            | DIMENSION dim {, dim}
//! dim       := NAME ( extent [, extent] )
//! stmt      := [label] DO [label] VAR = e , e [, e] NL stmt* do-end
//!            | [label] IF ( cond ) THEN NL stmt* [ELSE NL stmt*] ENDIF
//!            | [label] IF ( cond ) simple-stmt
//!            | [label] VAR = e  |  [label] A(i[,j]) = e
//!            | [label] CONTINUE
//!            | !MD$ directive
//! do-end    := label CONTINUE | ENDDO | END DO
//! ```
//!
//! Labelled `DO` loops terminate at the statement carrying the matching
//! label (classically `10 CONTINUE`); a non-`CONTINUE` terminator is kept
//! as the final body statement.

use crate::ast::{
    AllocArg, ArrayDecl, BinOp, Directive, Expr, Extent, Loc, Program, RelOp, Stmt, UnOp,
};
use crate::error::{LangError, LangResult};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{DotOp, Token, TokenKind};

/// Parses a full program from source text.
///
/// This runs the lexer and the parser but *not* semantic analysis; call
/// [`crate::sema::analyze`] on the result to resolve intrinsics and check
/// array usage.
///
/// # Examples
///
/// ```
/// let p = cdmm_lang::parse("PROGRAM T\nDIMENSION V(4)\nV(1) = 0.0\nEND").unwrap();
/// assert_eq!(p.body.len(), 1);
/// ```
pub fn parse(src: &str) -> LangResult<Program> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a directive payload such as `ALLOCATE ((3,12) ELSE (1,2))`.
///
/// This is the same parser the `!MD$` sentinel lines go through, exposed
/// so tools can parse directives in isolation.
pub fn parse_directive(payload: &str) -> LangResult<Directive> {
    let tokens = lex(payload)?;
    let mut p = Parser::new(tokens);
    let d = p.directive_payload()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(d)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, expected: &str) -> LangError {
        match self.peek() {
            TokenKind::Eof => LangError::UnexpectedEof {
                expected: expected.into(),
            },
            other => LangError::UnexpectedToken {
                found: other.to_string(),
                expected: expected.into(),
                span: self.peek_span(),
            },
        }
    }

    fn expect_kw(&mut self, word: &str) -> LangResult<Span> {
        if self.peek().is_kw(word) {
            Ok(self.bump().span)
        } else {
            Err(self.err_here(&format!("`{word}`")))
        }
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.peek().is_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> LangResult<Span> {
        if self.peek() == kind {
            Ok(self.bump().span)
        } else {
            Err(self.err_here(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> LangResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn expect_newline(&mut self) -> LangResult<()> {
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof | TokenKind::DirectiveLine(_) => Ok(()),
            _ => Err(self.err_here("end of statement")),
        }
    }

    fn expect_eof(&mut self) -> LangResult<()> {
        match self.peek() {
            TokenKind::Eof => Ok(()),
            _ => Err(self.err_here("end of input")),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    // ----- program structure -------------------------------------------

    fn program(&mut self) -> LangResult<Program> {
        self.skip_newlines();
        self.expect_kw("PROGRAM")?;
        let (name, _) = self.expect_ident("program name")?;
        self.expect_newline()?;
        self.skip_newlines();

        let mut params = Vec::new();
        let mut arrays = Vec::new();
        loop {
            if self.peek().is_kw("PARAMETER") {
                self.bump();
                self.parse_parameter_list(&mut params)?;
                self.expect_newline()?;
                self.skip_newlines();
            } else if self.peek().is_kw("DIMENSION") {
                self.bump();
                self.parse_dimension_list(&mut arrays)?;
                self.expect_newline()?;
                self.skip_newlines();
            } else {
                break;
            }
        }

        let body = self.stmt_list(StopAt::ProgramEnd)?;
        self.expect_kw("END")?;
        self.skip_newlines();
        self.expect_eof()?;
        Ok(Program {
            name,
            params,
            arrays,
            body,
        })
    }

    fn parse_parameter_list(&mut self, params: &mut Vec<(String, i64)>) -> LangResult<()> {
        self.expect(&TokenKind::LParen, "`(`")?;
        loop {
            let (name, _) = self.expect_ident("parameter name")?;
            self.expect(&TokenKind::Equals, "`=`")?;
            let neg = matches!(self.peek(), TokenKind::Minus) && {
                self.bump();
                true
            };
            let value = match self.peek().clone() {
                TokenKind::Int(v) => {
                    self.bump();
                    if neg {
                        -v
                    } else {
                        v
                    }
                }
                _ => return Err(self.err_here("integer parameter value")),
            };
            params.push((name, value));
            if matches!(self.peek(), TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(())
    }

    fn parse_dimension_list(&mut self, arrays: &mut Vec<ArrayDecl>) -> LangResult<()> {
        loop {
            let (name, sp) = self.expect_ident("array name")?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut extents = vec![self.parse_extent()?];
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                extents.push(self.parse_extent()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            arrays.push(ArrayDecl {
                name,
                extents,
                loc: Loc(sp),
            });
            if matches!(self.peek(), TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_extent(&mut self) -> LangResult<Extent> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                if matches!(self.peek(), TokenKind::Star) {
                    self.bump();
                    let (name, _) = self.expect_ident("parameter name after `*`")?;
                    Ok(Extent::Scaled(v, name))
                } else {
                    Ok(Extent::Lit(v))
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Extent::Param(name))
            }
            _ => Err(self.err_here("array extent")),
        }
    }

    // ----- statements ---------------------------------------------------

    fn stmt_list(&mut self, stop: StopAt) -> LangResult<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Eof => {
                    if stop == StopAt::ProgramEnd {
                        return Err(LangError::UnexpectedEof {
                            expected: "`END`".into(),
                        });
                    }
                    return Ok(out);
                }
                TokenKind::DirectiveLine(payload) => {
                    let payload = payload.clone();
                    let sp = self.bump().span;
                    let dir = parse_directive(&payload).map_err(|e| match e {
                        LangError::UnexpectedEof { expected } => LangError::BadDirective {
                            reason: format!("truncated directive, expected {expected}"),
                            span: sp,
                        },
                        other => other,
                    })?;
                    out.push(Stmt::Directive { dir, loc: Loc(sp) });
                    continue;
                }
                _ => {}
            }

            // Terminators for the enclosing construct.
            if self.at_stop(&stop) {
                return Ok(out);
            }

            // An optional statement label.
            let label = match self.peek() {
                TokenKind::Label(l) => {
                    let l = *l;
                    self.bump();
                    Some(l)
                }
                _ => None,
            };

            // A labelled terminator for a labelled DO?
            if let (Some(l), StopAt::DoLabel(want)) = (label, &stop) {
                if l == *want {
                    // The terminating statement is part of the loop body
                    // unless it is a plain CONTINUE.
                    if self.eat_kw("CONTINUE") {
                        self.expect_newline()?;
                    } else {
                        let stmt = self.simple_or_structured_stmt(None)?;
                        out.push(stmt);
                    }
                    return Ok(out);
                }
            }

            let stmt = self.simple_or_structured_stmt(label)?;
            out.push(stmt);
        }
    }

    fn at_stop(&self, stop: &StopAt) -> bool {
        match stop {
            StopAt::ProgramEnd => {
                // `END` but not `END DO` / `END IF` / `ENDDO` / `ENDIF`.
                self.peek().is_kw("END")
                    && !self.peek_ahead(1).is_kw("DO")
                    && !self.peek_ahead(1).is_kw("IF")
            }
            StopAt::EndDo => {
                self.peek().is_kw("ENDDO")
                    || (self.peek().is_kw("END") && self.peek_ahead(1).is_kw("DO"))
            }
            StopAt::EndIfOrElse => {
                self.peek().is_kw("ENDIF")
                    || self.peek().is_kw("ELSE")
                    || (self.peek().is_kw("END") && self.peek_ahead(1).is_kw("IF"))
            }
            StopAt::DoLabel(_) => false,
        }
    }

    fn simple_or_structured_stmt(&mut self, label: Option<u32>) -> LangResult<Stmt> {
        if self.peek().is_kw("DO") {
            return self.do_stmt();
        }
        if self.peek().is_kw("IF") {
            return self.if_stmt();
        }
        if self.peek().is_kw("CONTINUE") {
            let sp = self.bump().span;
            self.expect_newline()?;
            return Ok(Stmt::Continue {
                label,
                loc: Loc(sp),
            });
        }
        self.assign_stmt()
    }

    fn do_stmt(&mut self) -> LangResult<Stmt> {
        let do_span = self.expect_kw("DO")?;
        // Optional terminating label: `DO 10 I = ...`.
        let term_label = match self.peek() {
            TokenKind::Int(v) => {
                let v = *v;
                if v < 0 || v > u32::MAX as i64 {
                    return Err(self.err_here("loop label"));
                }
                self.bump();
                Some(v as u32)
            }
            _ => None,
        };
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(&TokenKind::Equals, "`=`")?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma, "`,`")?;
        let hi = self.expr()?;
        let step = if matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_newline()?;

        let body = if let Some(l) = term_label {
            // `stmt_list` consumes the terminating labelled statement; it
            // errors out on EOF or on the program's `END`, which surfaces a
            // missing terminator as a parse error.
            self.stmt_list(StopAt::DoLabel(l)).map_err(|e| match e {
                LangError::UnexpectedEof { .. } => LangError::UnterminatedDo {
                    label: l,
                    span: do_span,
                },
                other => other,
            })?
        } else {
            let body = self.stmt_list(StopAt::EndDo)?;
            if self.eat_kw("ENDDO") {
                // ok
            } else {
                self.expect_kw("END")?;
                self.expect_kw("DO")?;
            }
            self.expect_newline()?;
            body
        };
        Ok(Stmt::Do {
            label: term_label,
            var,
            lo,
            hi,
            step,
            body,
            loc: Loc(do_span),
        })
    }

    fn if_stmt(&mut self) -> LangResult<Stmt> {
        let if_span = self.expect_kw("IF")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        if self.eat_kw("THEN") {
            self.expect_newline()?;
            let then_body = self.stmt_list(StopAt::EndIfOrElse)?;
            let else_body = if self.eat_kw("ELSE") {
                self.expect_newline()?;
                let b = self.stmt_list(StopAt::EndIfOrElse)?;
                if self.peek().is_kw("ELSE") {
                    return Err(self.err_here("`ENDIF` (only one ELSE per IF)"));
                }
                b
            } else {
                Vec::new()
            };
            if self.eat_kw("ENDIF") {
                // ok
            } else {
                self.expect_kw("END")?;
                self.expect_kw("IF")?;
            }
            self.expect_newline()?;
            Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                loc: Loc(if_span),
            })
        } else {
            // One-line logical IF: `IF (cond) stmt`.
            let inner = if self.peek().is_kw("CONTINUE") {
                let sp = self.bump().span;
                self.expect_newline()?;
                Stmt::Continue {
                    label: None,
                    loc: Loc(sp),
                }
            } else {
                self.assign_stmt()?
            };
            Ok(Stmt::If {
                cond,
                then_body: vec![inner],
                else_body: Vec::new(),
                loc: Loc(if_span),
            })
        }
    }

    fn assign_stmt(&mut self) -> LangResult<Stmt> {
        let (name, sp) = self.expect_ident("statement")?;
        let target = if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let mut indices = vec![self.expr()?];
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                indices.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Expr::Element {
                array: name,
                indices,
                loc: Loc(sp),
            }
        } else {
            Expr::Scalar(name)
        };
        self.expect(&TokenKind::Equals, "`=`")?;
        let value = self.expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign {
            target,
            value,
            loc: Loc(sp),
        })
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> LangResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), TokenKind::DotOp(DotOp::Or)) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), TokenKind::DotOp(DotOp::And)) {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> LangResult<Expr> {
        if matches!(self.peek(), TokenKind::DotOp(DotOp::Not)) {
            self.bump();
            let inner = self.not_expr()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::DotOp(DotOp::Gt) => RelOp::Gt,
            TokenKind::DotOp(DotOp::Ge) => RelOp::Ge,
            TokenKind::DotOp(DotOp::Lt) => RelOp::Lt,
            TokenKind::DotOp(DotOp::Le) => RelOp::Le,
            TokenKind::DotOp(DotOp::Eq) => RelOp::Eq,
            TokenKind::DotOp(DotOp::Ne) => RelOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Rel {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> LangResult<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    operand: Box::new(inner),
                })
            }
            TokenKind::Plus => {
                self.bump();
                self.unary_expr()
            }
            _ => self.pow_expr(),
        }
    }

    fn pow_expr(&mut self) -> LangResult<Expr> {
        let base = self.primary()?;
        if matches!(self.peek(), TokenKind::StarStar) {
            self.bump();
            // `**` is right-associative in FORTRAN.
            let exp = self.unary_expr()?;
            Ok(Expr::Bin {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
            })
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> LangResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                let sp = self.bump().span;
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut indices = vec![self.expr()?];
                    while matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        indices.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Ok(Expr::Element {
                        array: name,
                        indices,
                        loc: Loc(sp),
                    })
                } else {
                    Ok(Expr::Scalar(name))
                }
            }
            _ => Err(self.err_here("expression")),
        }
    }

    // ----- directives ----------------------------------------------------

    fn directive_payload(&mut self) -> LangResult<Directive> {
        let sp = self.peek_span();
        if self.eat_kw("ALLOCATE") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut args = Vec::new();
            loop {
                self.expect(&TokenKind::LParen, "`(`")?;
                let pi = self.directive_u32("priority index")?;
                self.expect(&TokenKind::Comma, "`,`")?;
                let pages = self.directive_u64("page count")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                args.push(AllocArg { pi, pages });
                if self.eat_kw("ELSE") {
                    continue;
                }
                break;
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            validate_allocate(&args, sp)?;
            Ok(Directive::Allocate { args })
        } else if self.eat_kw("LOCK") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let pj = self.directive_u32("priority index")?;
            let mut arrays = Vec::new();
            while matches!(self.peek(), TokenKind::Comma) {
                self.bump();
                let (name, _) = self.expect_ident("array name")?;
                arrays.push(name);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(Directive::Lock { pj, arrays })
        } else if self.eat_kw("UNLOCK") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut arrays = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                let (name, _) = self.expect_ident("array name")?;
                arrays.push(name);
                while matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                    let (name, _) = self.expect_ident("array name")?;
                    arrays.push(name);
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(Directive::Unlock { arrays })
        } else {
            Err(LangError::BadDirective {
                reason: "expected ALLOCATE, LOCK or UNLOCK".into(),
                span: sp,
            })
        }
    }

    fn directive_u32(&mut self, what: &str) -> LangResult<u32> {
        match self.peek() {
            TokenKind::Int(v) if *v >= 0 && *v <= u32::MAX as i64 => {
                let v = *v as u32;
                self.bump();
                Ok(v)
            }
            // A label token appears when the number starts the payload line.
            TokenKind::Label(v) => {
                let v = *v;
                self.bump();
                Ok(v)
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn directive_u64(&mut self, what: &str) -> LangResult<u64> {
        match self.peek() {
            TokenKind::Int(v) if *v >= 0 => {
                let v = *v as u64;
                self.bump();
                Ok(v)
            }
            _ => Err(self.err_here(what)),
        }
    }
}

/// Checks the paper's well-formedness rules for `ALLOCATE`:
/// `PI1 > PI2 > ...` and `X1 >= X2 >= ...`.
fn validate_allocate(args: &[AllocArg], span: Span) -> LangResult<()> {
    if args.is_empty() {
        return Err(LangError::BadDirective {
            reason: "ALLOCATE needs at least one (PI,X) request".into(),
            span,
        });
    }
    for w in args.windows(2) {
        if w[0].pi <= w[1].pi {
            return Err(LangError::BadDirective {
                reason: format!(
                    "priority indexes must strictly decrease (found {} then {})",
                    w[0].pi, w[1].pi
                ),
                span,
            });
        }
        if w[0].pages < w[1].pages {
            return Err(LangError::BadDirective {
                reason: format!(
                    "page requests must be non-increasing (found {} then {})",
                    w[0].pages, w[1].pages
                ),
                span,
            });
        }
    }
    Ok(())
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum StopAt {
    /// Stop before the program's final `END`.
    ProgramEnd,
    /// Stop at `ENDDO` / `END DO` (consumed by the caller).
    EndDo,
    /// Stop at `ELSE` / `ENDIF` / `END IF` (consumed by the caller).
    EndIfOrElse,
    /// Stop after consuming the statement labelled with this label.
    DoLabel(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_body(body: &str) -> Program {
        let src = format!("PROGRAM T\nPARAMETER (N = 10)\nDIMENSION A(N,N), V(N)\n{body}\nEND\n");
        parse(&src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse("PROGRAM T\nEND").unwrap();
        assert_eq!(p.name, "T");
        assert!(p.body.is_empty());
    }

    #[test]
    fn parses_labelled_do_with_continue() {
        let p = parse_body("DO 10 I = 1, N\nV(I) = 0.0\n10 CONTINUE");
        match &p.body[0] {
            Stmt::Do {
                label, var, body, ..
            } => {
                assert_eq!(*label, Some(10));
                assert_eq!(var, "I");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parses_enddo_loop() {
        let p = parse_body("DO I = 1, N\nV(I) = 0.0\nEND DO");
        match &p.body[0] {
            Stmt::Do { label, body, .. } => {
                assert!(label.is_none());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected DO, got {other:?}"),
        }
        // The compact spelling too.
        let p = parse_body("DO I = 1, N\nV(I) = 0.0\nENDDO");
        assert!(matches!(p.body[0], Stmt::Do { .. }));
    }

    #[test]
    fn parses_nested_labelled_loops() {
        let p =
            parse_body("DO 10 I = 1, N\nDO 20 J = 1, N\nA(J,I) = V(J)\n20 CONTINUE\n10 CONTINUE");
        match &p.body[0] {
            Stmt::Do { body, .. } => match &body[0] {
                Stmt::Do { label, .. } => assert_eq!(*label, Some(20)),
                other => panic!("expected inner DO, got {other:?}"),
            },
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn labelled_do_with_non_continue_terminator() {
        let p = parse_body("DO 10 I = 1, N\n10 V(I) = 0.0");
        match &p.body[0] {
            Stmt::Do { body, .. } => {
                assert_eq!(body.len(), 1);
                assert!(matches!(body[0], Stmt::Assign { .. }));
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parses_do_with_step() {
        let p = parse_body("DO 10 I = 1, N, 2\nV(I) = 0.0\n10 CONTINUE");
        match &p.body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, Some(Expr::Int(2))),
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parses_block_if_else() {
        let p = parse_body("IF (X .GT. 0.0) THEN\nV(1) = 1.0\nELSE\nV(1) = 2.0\nENDIF");
        match &p.body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }

    #[test]
    fn parses_one_line_if() {
        let p = parse_body("IF (X .LT. 1.0) X = 1.0");
        match &p.body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert!(else_body.is_empty());
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_body("X = 1 + 2 * 3");
        match &p.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Bin {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("expected +, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let p = parse_body("X = 2 ** 3 ** 2");
        match &p.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Bin {
                    op: BinOp::Pow,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Bin { op: BinOp::Pow, .. }));
                }
                other => panic!("expected **, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        // NOT binds tighter than AND, AND tighter than OR.
        let p = parse_body("IF (.NOT. A .GT. B .AND. C .LT. D .OR. E .EQ. F) X = 1");
        match &p.body[0] {
            Stmt::If { cond, .. } => assert!(matches!(cond, Expr::Or(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unterminated_do_is_error() {
        let src = "PROGRAM T\nDIMENSION V(4)\nDO 10 I = 1, 4\nV(I) = 0.0\nEND";
        assert!(parse(src).is_err());
    }

    #[test]
    fn mismatched_endif_is_error() {
        let src = "PROGRAM T\nIF (X .GT. 0) THEN\nX = 1\nEND";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_allocate_directive_line() {
        let p = parse_body(
            "!MD$ ALLOCATE ((3,12) ELSE (1,2))\nDO 10 I = 1, N\nV(I) = 0.0\n10 CONTINUE",
        );
        match &p.body[0] {
            Stmt::Directive {
                dir: Directive::Allocate { args },
                ..
            } => {
                assert_eq!(args.len(), 2);
                assert_eq!(args[0], AllocArg { pi: 3, pages: 12 });
                assert_eq!(args[1], AllocArg { pi: 1, pages: 2 });
            }
            other => panic!("expected directive, got {other:?}"),
        }
    }

    #[test]
    fn parses_lock_unlock_directives() {
        let d = parse_directive("LOCK (3,A,B)").unwrap();
        assert_eq!(
            d,
            Directive::Lock {
                pj: 3,
                arrays: vec!["A".into(), "B".into()]
            }
        );
        let d = parse_directive("UNLOCK (A,B,E,F)").unwrap();
        assert_eq!(
            d,
            Directive::Unlock {
                arrays: vec!["A".into(), "B".into(), "E".into(), "F".into()]
            }
        );
        let d = parse_directive("UNLOCK ()").unwrap();
        assert_eq!(d, Directive::Unlock { arrays: vec![] });
    }

    #[test]
    fn allocate_priority_must_decrease() {
        assert!(parse_directive("ALLOCATE ((1,5) ELSE (2,3))").is_err());
        assert!(parse_directive("ALLOCATE ((2,2) ELSE (1,5))").is_err());
        assert!(parse_directive("ALLOCATE ()").is_err());
    }

    #[test]
    fn directive_must_be_known() {
        assert!(matches!(
            parse_directive("RELEASE (1)"),
            Err(LangError::BadDirective { .. })
        ));
    }

    #[test]
    fn fig5_directive_shapes_parse() {
        // The exact directive shapes from Figure 5c of the paper.
        for payload in [
            "ALLOCATE ((3,10))",
            "ALLOCATE ((3,10) ELSE (1,2))",
            "ALLOCATE ((3,10) ELSE (2,4))",
            "ALLOCATE ((3,10) ELSE (2,4) ELSE (1,2))",
            "LOCK (3,A,B)",
            "LOCK (2,E,F)",
            "UNLOCK (A,B,E,F)",
        ] {
            parse_directive(payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("PROGRAM T\nX = = 1\nEND").unwrap_err();
        match err {
            LangError::UnexpectedToken { span, .. } => assert_eq!(span.line, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn scaled_extent_parses() {
        let p = parse("PROGRAM T\nPARAMETER (N = 4)\nDIMENSION W(3*N)\nEND").unwrap();
        assert_eq!(p.arrays[0].extents[0], Extent::Scaled(3, "N".into()));
    }
}
