//! The shared `BENCH_*.json` artifact format: one schema for every
//! bench binary, so the perf-regression gate can diff any of them
//! against checked-in baselines.
//!
//! An [`Artifact`] is a flat list of entries, each a stable string id
//! plus ordered numeric fields. It serializes to pretty-printed JSON
//! with a `schema` version tag (see [`SCHEMA`]) and parses back with a
//! small built-in reader — the workspace has no serde, and the format
//! is deliberately narrow: strings appear only as ids and tags, every
//! measurement is a number.
//!
//! Determinism: fields keep insertion order, integers print exactly,
//! and floats print with Rust's shortest-round-trip `Display`, so
//! re-generating an artifact from the same run yields byte-identical
//! bytes — the property the drift gate and `CDMM_BLESS` workflow rely
//! on. Field-name conventions carry the gate semantics: names ending
//! in `_ns` and the name `refs_per_sec` are wall-clock measurements
//! (machine-dependent, threshold-compared); everything else must match
//! the baseline exactly.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Artifact schema version tag. Bump when the shape changes; the
/// parser accepts the current tag and every entry of
/// [`COMPAT_SCHEMAS`], and rejects everything else. `cdmm-bench/2`
/// adds scheduler-plane wall counters (`sched_*` fields, classified as
/// wall measurements by [`is_wall_field`]); the shape is otherwise
/// unchanged, so `/1` baselines still parse.
pub const SCHEMA: &str = "cdmm-bench/2";

/// Older schema tags [`Artifact::from_json`] still accepts, so
/// archived baselines (e.g. `baselines/trajectory/`) remain readable.
pub const COMPAT_SCHEMAS: &[&str] = &["cdmm-bench/1"];

/// A numeric field value: integers survive exactly, everything else is
/// an IEEE double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// An exact unsigned integer.
    U(u64),
    /// A double (printed with shortest-round-trip `Display`).
    F(f64),
}

impl Num {
    /// The value as a double (exact for integers below 2^53 — every
    /// counter the bench suite emits).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(v) => v as f64,
            Num::F(v) => v,
        }
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Num::U(v) => write!(f, "{v}"),
            Num::F(v) => {
                debug_assert!(v.is_finite(), "artifacts hold finite measurements");
                // `1.0` Display-prints as "1": force a float marker so
                // the field round-trips as F, not U.
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// One measured row: a stable id (e.g. `"MAIN/CD"` or
/// `"table3/FDJAC"`) plus ordered `(field, value)` measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable identity used to match baseline and fresh rows.
    pub id: String,
    /// Ordered numeric fields.
    pub fields: Vec<(String, Num)>,
}

impl Entry {
    /// A new entry with no fields.
    pub fn new(id: impl Into<String>) -> Self {
        Entry {
            id: id.into(),
            fields: Vec::new(),
        }
    }

    /// Appends an exact integer field.
    pub fn int(mut self, name: &str, v: u64) -> Self {
        self.fields.push((name.to_string(), Num::U(v)));
        self
    }

    /// Appends a double field.
    pub fn float(mut self, name: &str, v: f64) -> Self {
        self.fields.push((name.to_string(), Num::F(v)));
        self
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<Num> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Artifact kind — `"perf"` or `"tables"`; names the output file
    /// `BENCH_<kind>.json`.
    pub kind: String,
    /// Workload scale tag (`"paper"` or `"small"`); baselines only
    /// compare against fresh artifacts of the same scale.
    pub scale: String,
    /// The measured rows.
    pub entries: Vec<Entry>,
}

impl Artifact {
    /// An empty artifact of the given kind and scale.
    pub fn new(kind: &str, scale: &str) -> Self {
        Artifact {
            kind: kind.to_string(),
            scale: scale.to_string(),
            entries: Vec::new(),
        }
    }

    /// The file name this artifact writes to: `BENCH_<kind>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.kind)
    }

    /// Serializes to pretty-printed, deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"kind\": \"{}\",\n", self.kind));
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    {{\"id\": \"{}\"", e.id));
            for (name, v) in &e.fields {
                s.push_str(&format!(", \"{name}\": {v}"));
            }
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parses an artifact back from [`Artifact::to_json`] output (or
    /// any JSON of the same narrow shape).
    pub fn from_json(text: &str) -> Result<Artifact, String> {
        Parser::new(text).document()
    }

    /// Writes the artifact into `dir` (created if missing) as
    /// `BENCH_<kind>.json`; returns the written path.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Reads `BENCH_<kind>.json` from `dir`.
    pub fn read_from_dir(dir: &Path, kind: &str) -> Result<Artifact, String> {
        let path = dir.join(format!("BENCH_{kind}.json"));
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let a = Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if a.kind != kind {
            return Err(format!(
                "{}: kind {:?} does not match file name (expected {kind:?})",
                path.display(),
                a.kind
            ));
        }
        Ok(a)
    }
}

/// True when a field name denotes a wall-clock measurement (machine-
/// dependent, threshold-compared by the regression gate) rather than a
/// deterministic simulation metric (exact-compared). `_ns` names are
/// durations (regress upward); `_per_sec` names are throughputs
/// (regress downward). `sched_*` names are scheduler-plane counters
/// (shard claims/steals) that depend on run geometry and thread
/// timing, so they are tolerance-gated like wall measurements rather
/// than exact-compared.
pub fn is_wall_field(name: &str) -> bool {
    name.ends_with("_ns") || name.ends_with("_per_sec") || name.starts_with("sched_")
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            s: text.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == ch => {
                self.i += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                ch as char,
                self.i,
                other.map(|c| c as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'"' {
            if self.s[self.i] == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.i));
            }
            self.i += 1;
        }
        if self.i >= self.s.len() {
            return Err("unterminated string".to_string());
        }
        let out = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.i += 1;
        Ok(out)
    }

    fn number(&mut self) -> Result<Num, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| "non-utf8 number".to_string())?;
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Num::U(v));
        }
        text.parse::<f64>()
            .map(Num::F)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn entry(&mut self) -> Result<Entry, String> {
        self.expect(b'{')?;
        let mut entry = Entry::new("");
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            if key == "id" {
                entry.id = self.string()?;
            } else {
                let v = self.number()?;
                entry.fields.push((key, v));
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
        if entry.id.is_empty() {
            return Err("entry without an \"id\"".to_string());
        }
        Ok(entry)
    }

    fn document(&mut self) -> Result<Artifact, String> {
        self.expect(b'{')?;
        let mut schema = None;
        let mut artifact = Artifact::new("", "");
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(self.string()?),
                "kind" => artifact.kind = self.string()?,
                "scale" => artifact.scale = self.string()?,
                "entries" => {
                    self.expect(b'[')?;
                    if self.peek() == Some(b']') {
                        self.i += 1;
                    } else {
                        loop {
                            artifact.entries.push(self.entry()?);
                            match self.peek() {
                                Some(b',') => self.i += 1,
                                Some(b']') => {
                                    self.i += 1;
                                    break;
                                }
                                other => {
                                    return Err(format!("expected ',' or ']', found {other:?}"))
                                }
                            }
                        }
                    }
                }
                other => return Err(format!("unknown artifact key {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
        match schema.as_deref() {
            Some(tag) if tag == SCHEMA || COMPAT_SCHEMAS.contains(&tag) => {}
            Some(other) => return Err(format!("schema {other:?} is not the supported {SCHEMA:?}")),
            None => return Err("artifact has no \"schema\" tag".to_string()),
        }
        if self.peek().is_some() {
            return Err("trailing content after artifact".to_string());
        }
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new("perf", "small");
        a.entries.push(
            Entry::new("MAIN/CD")
                .int("refs", 59_053)
                .int("faults", 123)
                .float("mean_mem", 2.5)
                .float("refs_per_sec", 1.25e8)
                .int("simulate_ns", 472_424),
        );
        a.entries
            .push(Entry::new("MAIN/LRU").int("refs", 59_053).float("st", 4.0));
        a
    }

    #[test]
    fn json_round_trips_exactly() {
        let a = sample();
        let text = a.to_json();
        let b = Artifact::from_json(&text).expect("parses");
        assert_eq!(a, b);
        assert_eq!(b.to_json(), text, "re-serialization is byte-identical");
    }

    #[test]
    fn schema_version_is_enforced() {
        let text = sample().to_json().replace(SCHEMA, "cdmm-bench/0");
        let err = Artifact::from_json(&text).unwrap_err();
        assert!(err.contains("cdmm-bench/0"), "{err}");
        let untagged = r#"{"kind": "perf", "scale": "small", "entries": []}"#;
        assert!(Artifact::from_json(untagged)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn previous_schema_versions_still_parse() {
        let a = sample();
        for old in COMPAT_SCHEMAS {
            let text = a.to_json().replace(SCHEMA, old);
            let b = Artifact::from_json(&text).expect("compat schema parses");
            assert_eq!(a, b);
            // Re-serialization upgrades the tag to the current schema.
            assert!(b.to_json().contains(SCHEMA));
        }
    }

    #[test]
    fn floats_keep_their_type_through_a_round_trip() {
        let mut a = Artifact::new("perf", "small");
        a.entries
            .push(Entry::new("x").float("whole", 4.0).int("count", 4));
        let b = Artifact::from_json(&a.to_json()).expect("parses");
        assert_eq!(b.entries[0].get("whole"), Some(Num::F(4.0)));
        assert_eq!(b.entries[0].get("count"), Some(Num::U(4)));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            r#"{"schema": "cdmm-bench/1", "entries": [{"refs": 1}]}"#,
            r#"{"schema": "cdmm-bench/1", "bogus": 3}"#,
        ] {
            assert!(Artifact::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn wall_fields_are_classified_by_name() {
        assert!(is_wall_field("simulate_ns"));
        assert!(is_wall_field("refs_per_sec"));
        assert!(is_wall_field("requests_per_sec"));
        assert!(is_wall_field("sched_claims"));
        assert!(is_wall_field("sched_steals"));
        assert!(!is_wall_field("faults"));
        assert!(!is_wall_field("mean_mem"));
        assert!(!is_wall_field("scheduler_depth"));
    }

    #[test]
    fn dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("cdmm-artifact-{}", std::process::id()));
        let a = sample();
        let path = a.write_to_dir(&dir).expect("writes");
        assert!(path.ends_with("BENCH_perf.json"));
        let b = Artifact::read_from_dir(&dir, "perf").expect("reads");
        assert_eq!(a, b);
        assert!(Artifact::read_from_dir(&dir, "tables")
            .unwrap_err()
            .contains("BENCH_tables.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
