//! The one command-line parser shared by every bench binary.
//!
//! Every binary accepts the same flag set — `--small`, `--threads N`,
//! `--cache-dir PATH`, `--assert-hit-rate PCT`, `--quick`,
//! `--trace-out PATH`, `--trace-events`, `--bench-out DIR`,
//! `--progress-out PATH`, `--progress-tty` — parsed into [`Options`]
//! with unknown flags rejected instead of silently ignored. [`BenchEnv`]
//! turns parsed options into the runtime pieces the printing helpers
//! need: a scale, an executor, and (when `--trace-out` is given) a
//! shared [`JsonlSink`] tracer every subsystem feeds.

use std::fmt;
use std::path::PathBuf;

use cdmm_core::sweep::Executor;
use cdmm_vmsim::observe::{shared, SharedTracer};
use cdmm_vmsim::JsonlSink;
use cdmm_workloads::Scale;

/// Parsed command-line options for a bench binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Workload scale (`--small` selects [`Scale::Small`]).
    pub scale: Scale,
    /// Worker threads (`--threads N`); `None` defers to `CDMM_THREADS`
    /// then the available parallelism.
    pub threads: Option<usize>,
    /// Persistent sweep-cache directory (`--cache-dir PATH`).
    pub cache_dir: Option<PathBuf>,
    /// Required cache hit rate in percent (`--assert-hit-rate PCT`).
    pub assert_hit_rate: Option<f64>,
    /// Skip serial baselines (`--quick`).
    pub quick: bool,
    /// Write a checksummed JSONL event trace here (`--trace-out PATH`).
    /// Rejected at parse time when the parent directory is missing.
    pub trace_out: Option<PathBuf>,
    /// Include per-reference events in the trace (`--trace-events`;
    /// large output — off by default).
    pub trace_events: bool,
    /// Write `BENCH_*.json` artifacts into this directory
    /// (`--bench-out DIR`; created if missing).
    pub bench_out: Option<PathBuf>,
    /// Append `cdmm-progress/1` JSONL frames here (`--progress-out
    /// PATH`). Rejected at parse time when the parent directory is
    /// missing.
    pub progress_out: Option<PathBuf>,
    /// Repaint a live status line on stderr (`--progress-tty`).
    pub progress_tty: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Paper,
            threads: None,
            cache_dir: None,
            assert_hit_rate: None,
            quick: false,
            trace_out: None,
            trace_events: false,
            bench_out: None,
            progress_out: None,
            progress_tty: false,
        }
    }
}

/// A command-line rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag no bench binary understands.
    UnknownFlag(String),
    /// A value-taking flag at the end of the argument list.
    MissingValue(String),
    /// A value that does not parse for its flag.
    BadValue {
        /// The flag the value belonged to.
        flag: String,
        /// The rejected text.
        value: String,
    },
    /// A path whose parent directory does not exist — rejected up
    /// front instead of failing mid-run with an opaque io error.
    BadPath {
        /// The flag the path belonged to.
        flag: String,
        /// The rejected path.
        path: PathBuf,
    },
    /// `--help` was requested (not an error; callers print usage).
    Help,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag:?}"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::BadValue { flag, value } => {
                write!(f, "{flag}: cannot parse {value:?}")
            }
            CliError::BadPath { flag, path } => {
                write!(
                    f,
                    "{flag} {}: parent directory does not exist",
                    path.display()
                )
            }
            CliError::Help => write!(f, "help requested"),
        }
    }
}

impl std::error::Error for CliError {}

/// The flag summary every binary prints on `--help` or a parse error.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--small] [--threads N] [--cache-dir PATH]\n\
         {pad}[--assert-hit-rate PCT] [--quick]\n\
         {pad}[--trace-out PATH] [--trace-events] [--bench-out DIR]\n\
         {pad}[--progress-out PATH] [--progress-tty]\n\
         \n\
         --small            reduced workload scale (CI/tests)\n\
         --threads N        executor worker threads\n\
         --cache-dir PATH   persistent sweep-result cache\n\
         --assert-hit-rate PCT  fail unless the cache hit rate reaches PCT\n\
         --quick            skip serial baselines\n\
         --trace-out PATH   write a checksummed JSONL event trace\n\
         --trace-events     include per-reference events in the trace\n\
         --bench-out DIR    write BENCH_*.json artifacts into DIR\n\
         --progress-out PATH  append cdmm-progress/1 JSONL frames\n\
         --progress-tty     repaint a live status line on stderr",
        pad = " ".repeat(bin.len() + 8),
    )
}

impl Options {
    /// Parses flags (without the program name). Rejects unknown flags.
    pub fn parse<I>(args: I) -> Result<Options, CliError>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut opts = Options::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .ok_or_else(|| CliError::MissingValue(flag.to_string()))
            };
            match arg.as_str() {
                "--small" => opts.scale = Scale::Small,
                "--quick" => opts.quick = true,
                "--trace-events" => opts.trace_events = true,
                "--threads" => {
                    let v = value("--threads")?;
                    opts.threads = Some(parse_value("--threads", &v)?);
                }
                "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?.into()),
                "--assert-hit-rate" => {
                    let v = value("--assert-hit-rate")?;
                    opts.assert_hit_rate = Some(parse_value("--assert-hit-rate", &v)?);
                }
                "--trace-out" => {
                    opts.trace_out = Some(parse_path("--trace-out", value("--trace-out")?)?);
                }
                "--progress-out" => {
                    opts.progress_out =
                        Some(parse_path("--progress-out", value("--progress-out")?)?);
                }
                "--progress-tty" => opts.progress_tty = true,
                "--bench-out" => opts.bench_out = Some(value("--bench-out")?.into()),
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, printing usage and exiting on a
    /// bad or `--help` invocation (binaries only; libraries should use
    /// [`Options::parse`]).
    pub fn from_env() -> Options {
        let mut args = std::env::args();
        let bin = args.next().unwrap_or_else(|| "bench".to_string());
        match Self::parse(args) {
            Ok(opts) => opts,
            Err(CliError::Help) => {
                println!("{}", usage(&bin));
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{bin}: {e}\n\n{}", usage(&bin));
                std::process::exit(2);
            }
        }
    }

    /// The executor these options select: `--threads` wins, then
    /// `CDMM_THREADS`, then the available parallelism.
    pub fn executor(&self) -> Executor {
        match self.threads {
            Some(n) => Executor::with_threads(n),
            None => Executor::from_env(),
        }
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, CliError> {
    v.parse().map_err(|_| CliError::BadValue {
        flag: flag.to_string(),
        value: v.to_string(),
    })
}

/// An output path whose parent must already exist — fail now, not
/// minutes into the run when the sink first opens.
fn parse_path(flag: &str, v: String) -> Result<PathBuf, CliError> {
    let path: PathBuf = v.into();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(CliError::BadPath {
                flag: flag.to_string(),
                path,
            });
        }
    }
    Ok(path)
}

/// Runtime environment of one bench invocation: the parsed [`Options`]
/// plus, when `--trace-out` was given, a [`SharedTracer`] writing the
/// JSONL event stream.
pub struct BenchEnv {
    opts: Options,
    tracer: Option<SharedTracer>,
    trace_path: Option<PathBuf>,
}

impl fmt::Debug for BenchEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchEnv")
            .field("opts", &self.opts)
            .field("trace_path", &self.trace_path)
            .finish()
    }
}

impl BenchEnv {
    /// Builds the environment from parsed options, opening the trace
    /// sink when one was requested.
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` names an unwritable path — a bench run
    /// that silently drops its requested trace would be worse.
    pub fn new(opts: Options) -> Self {
        let trace_path = opts.trace_out.clone();
        let tracer = trace_path.as_ref().map(|path| {
            let sink = JsonlSink::create(path)
                .unwrap_or_else(|e| panic!("--trace-out {}: {e}", path.display()))
                .with_refs(opts.trace_events);
            shared(sink)
        });
        BenchEnv {
            opts,
            tracer,
            trace_path,
        }
    }

    /// Parses the process arguments and builds the environment
    /// (binaries only; exits on a bad invocation).
    pub fn from_env() -> Self {
        Self::new(Options::from_env())
    }

    /// The parsed options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The workload scale.
    pub fn scale(&self) -> Scale {
        self.opts.scale
    }

    /// The executor, with the trace sink attached as its job observer
    /// when tracing is on.
    pub fn executor(&self) -> Executor {
        let exec = self.opts.executor();
        match &self.tracer {
            Some(t) => exec.with_observer(t.clone()),
            None => exec,
        }
    }

    /// The shared trace sink, when `--trace-out` was given.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        self.tracer.as_ref()
    }

    /// Flushes the trace sink and reports where the trace went. Call
    /// once at the end of `main`.
    pub fn finish(&self) {
        if let Some(t) = &self.tracer {
            t.lock().expect("tracer lock").flush();
            if let Some(path) = &self.trace_path {
                eprintln!("trace written to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, CliError> {
        Options::parse(args.iter().copied())
    }

    #[test]
    fn defaults_are_paper_scale_untraced() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
        assert_eq!(opts.scale, Scale::Paper);
        assert!(opts.trace_out.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&[
            "--small",
            "--threads",
            "3",
            "--cache-dir",
            "/tmp/c",
            "--assert-hit-rate",
            "90.5",
            "--quick",
            "--trace-out",
            "/tmp/t.jsonl",
            "--trace-events",
            "--bench-out",
            "/tmp/bench",
            "--progress-out",
            "/tmp/p.jsonl",
            "--progress-tty",
        ])
        .unwrap();
        assert_eq!(opts.scale, Scale::Small);
        assert_eq!(opts.threads, Some(3));
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(opts.assert_hit_rate, Some(90.5));
        assert!(opts.quick);
        assert_eq!(
            opts.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        assert!(opts.trace_events);
        assert_eq!(
            opts.bench_out.as_deref(),
            Some(std::path::Path::new("/tmp/bench"))
        );
        assert_eq!(
            opts.progress_out.as_deref(),
            Some(std::path::Path::new("/tmp/p.jsonl"))
        );
        assert!(opts.progress_tty);
        assert_eq!(opts.executor().threads(), 3);
    }

    #[test]
    fn trace_out_with_missing_parent_dir_is_rejected_up_front() {
        let missing = "/definitely/not/a/dir/t.jsonl";
        let err = parse(&["--trace-out", missing]).unwrap_err();
        assert_eq!(
            err,
            CliError::BadPath {
                flag: "--trace-out".to_string(),
                path: missing.into(),
            }
        );
        assert!(err.to_string().contains("parent directory"), "{err}");
        assert_eq!(
            parse(&["--progress-out", missing]).unwrap_err(),
            CliError::BadPath {
                flag: "--progress-out".to_string(),
                path: missing.into(),
            }
        );
        // A bare file name (empty parent) and an existing directory
        // both still parse.
        assert!(parse(&["--trace-out", "t.jsonl"]).is_ok());
        let tmp = std::env::temp_dir().join("t.jsonl");
        assert!(parse(&["--trace-out", &tmp.to_string_lossy()]).is_ok());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert_eq!(
            parse(&["--smol"]),
            Err(CliError::UnknownFlag("--smol".to_string()))
        );
        assert!(parse(&["--smol"])
            .unwrap_err()
            .to_string()
            .contains("--smol"));
    }

    #[test]
    fn missing_and_bad_values_are_rejected() {
        assert_eq!(
            parse(&["--threads"]),
            Err(CliError::MissingValue("--threads".to_string()))
        );
        assert_eq!(
            parse(&["--threads", "many"]),
            Err(CliError::BadValue {
                flag: "--threads".to_string(),
                value: "many".to_string(),
            })
        );
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage("tables");
        for flag in [
            "--small",
            "--threads",
            "--cache-dir",
            "--assert-hit-rate",
            "--quick",
            "--trace-out",
            "--trace-events",
            "--bench-out",
            "--progress-out",
            "--progress-tty",
        ] {
            assert!(u.contains(flag), "usage must mention {flag}");
        }
    }

    #[test]
    fn env_without_trace_has_no_tracer() {
        let env = BenchEnv::new(Options {
            scale: Scale::Small,
            ..Options::default()
        });
        assert!(env.tracer().is_none());
        assert_eq!(env.scale(), Scale::Small);
        env.finish();
    }

    #[test]
    fn env_with_trace_out_opens_the_sink() {
        let path = std::env::temp_dir().join(format!("cdmm-cli-{}.jsonl", std::process::id()));
        let env = BenchEnv::new(Options {
            scale: Scale::Small,
            trace_out: Some(path.clone()),
            ..Options::default()
        });
        assert!(env.tracer().is_some());
        assert!(env.executor().observer().is_some());
        env.finish();
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }
}
