//! Shared helpers for the table-regeneration binaries and the criterion
//! benches.
//!
//! Each of the paper's tables has a binary (`cargo run --release -p
//! cdmm-bench --bin tableN`) that prints the reproduced rows next to the
//! paper's published values, plus `--bin tables` to print everything, and
//! ablation binaries for the design choices DESIGN.md calls out.

use cdmm_core::experiments::{table1, table2, table3, table4, Harness, TABLE1_ROWS};
use cdmm_core::fleet::{run_fleet_spec, FleetSpec};
use cdmm_core::pipeline::{PipelineConfig, PolicySpec};
use cdmm_core::report;
use cdmm_core::sweep::{Executor, ResultCache};
use cdmm_vmsim::observe::SharedTracer;
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_vmsim::{Admission, FleetReport};
use cdmm_workloads::Scale;

pub mod artifact;
pub mod cli;
pub mod profile;
pub mod regress;

pub use cli::{BenchEnv, CliError, Options};

fn table_harness(env: &BenchEnv) -> Harness {
    Harness::new(env.scale()).with_executor(env.executor())
}

/// Builds the `BENCH_tables.json` artifact: every deterministic
/// fault-rate metric from Tables 1–4, one entry per `(table, program)`.
/// This is the canonical machine-readable table output — `tables` and
/// `sweep_bench` both write it when `--bench-out` is given, and the
/// `perf_regress` gate compares it exactly against the checked-in
/// baseline.
pub fn tables_artifact(scale: Scale, exec: Executor) -> artifact::Artifact {
    let mut h = Harness::new(scale).with_executor(exec);
    tables_artifact_from(&mut h, scale)
}

/// [`tables_artifact`] against an existing harness, reusing whatever
/// its result cache already memoized.
pub fn tables_artifact_from(h: &mut Harness, scale: Scale) -> artifact::Artifact {
    use artifact::{Artifact, Entry};
    let mut a = Artifact::new("tables", profile::scale_tag(scale));
    for r in table1(h) {
        a.entries.push(
            Entry::new(format!("table1/{}", r.program))
                .float("mem", r.mem)
                .int("pf", r.pf)
                .float("st", r.st)
                .int("recovered", r.recovered),
        );
    }
    for r in table2(h) {
        a.entries.push(
            Entry::new(format!("table2/{}", r.program))
                .float("cd_st", r.cd_st)
                .float("lru_pct_st", r.lru_pct_st)
                .float("ws_pct_st", r.ws_pct_st),
        );
    }
    for r in table3(h) {
        a.entries.push(
            Entry::new(format!("table3/{}", r.program))
                .float("cd_mem", r.cd_mem)
                .int("cd_pf", r.cd_pf)
                .float("lru_dpf", r.lru_dpf as f64)
                .float("lru_pct_st", r.lru_pct_st)
                .float("ws_dpf", r.ws_dpf as f64)
                .float("ws_pct_st", r.ws_pct_st),
        );
    }
    for r in table4(h) {
        a.entries.push(
            Entry::new(format!("table4/{}", r.program))
                .int("cd_pf", r.cd_pf)
                .float("lru_pct_mem", r.lru_pct_mem)
                .float("lru_pct_st", r.lru_pct_st)
                .float("ws_pct_mem", r.ws_pct_mem)
                .float("ws_pct_st", r.ws_pct_st),
        );
    }
    a
}

/// Prints Table 1.
pub fn print_table1(env: &BenchEnv) {
    let mut h = table_harness(env);
    println!("{}", report::render_table1(&table1(&mut h)));
}

/// Prints Table 2.
pub fn print_table2(env: &BenchEnv) {
    let mut h = table_harness(env);
    println!("{}", report::render_table2(&table2(&mut h)));
}

/// Prints Table 3.
pub fn print_table3(env: &BenchEnv) {
    let mut h = table_harness(env);
    println!("{}", report::render_table3(&table3(&mut h)));
}

/// Prints Table 4.
pub fn print_table4(env: &BenchEnv) {
    let mut h = table_harness(env);
    println!("{}", report::render_table4(&table4(&mut h)));
}

/// Ablation: CD with and without the LOCK/UNLOCK directives honored.
/// The paper inserts LOCK but defers its evaluation ("the effectiveness
/// of LOCK and UNLOCK directives is not studied in this work") — this is
/// that missing measurement.
pub fn print_lock_ablation(env: &BenchEnv) {
    println!("Ablation: CD with vs without LOCK/UNLOCK honored");
    println!(
        "{:<8} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
        "program", "PF lock", "MEM lock", "ST lock", "PF nolock", "MEM nolock", "ST nolock"
    );
    println!("{}", "-".repeat(86));
    // Locks must be inserted for this ablation; the paper-faithful
    // default harness strips them.
    let mut h = Harness::with_config(env.scale(), PipelineConfig::default());
    for row in TABLE1_ROWS {
        let (_, variant) = h.resolve(row);
        let selector = cdmm_core::selector_for(variant.level);
        let p = h.prepared(row);
        let with = p.run_cd(selector);
        let without = p.run_cd_no_locks(selector);
        println!(
            "{:<8} | {:>10} {:>10.2} {:>12.3e} | {:>10} {:>10.2} {:>12.3e}",
            row,
            with.faults,
            with.mean_mem(),
            with.st_cost(),
            without.faults,
            without.mean_mem(),
            without.st_cost()
        );
    }
    println!();
}

/// Ablation: ALLOCATE-only instrumentation (no LOCK at compile time)
/// versus full instrumentation.
pub fn print_insertion_ablation(env: &BenchEnv) {
    println!("Ablation: compile-time insertion of LOCK directives");
    println!(
        "{:<8} | {:>12} {:>12} | {:>12} {:>12}",
        "program", "PF full", "ST full", "PF alloc", "ST alloc"
    );
    println!("{}", "-".repeat(66));
    // `Harness::new` is already ALLOCATE-only; the "full" harness adds
    // compile-time LOCK insertion back.
    let mut h_full = Harness::with_config(env.scale(), PipelineConfig::default());
    let mut h_alloc = Harness::new(env.scale());
    for row in TABLE1_ROWS {
        let full = h_full.cd(row);
        let alloc = h_alloc.cd(row);
        println!(
            "{:<8} | {:>12} {:>12.3e} | {:>12} {:>12.3e}",
            row,
            full.faults,
            full.st_cost(),
            alloc.faults,
            alloc.st_cost()
        );
    }
    println!();
}

/// Ablation: the paper's upper-bound locality counting versus the tight
/// contiguity-aware counting (DESIGN.md §5½).
pub fn print_sizer_ablation(env: &BenchEnv) {
    use cdmm_locality::SizerMode;
    println!("Ablation: locality-size counting mode (CD at each row's default level)");
    println!(
        "{:<8} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
        "program", "PF tight", "MEM tight", "ST tight", "PF paper", "MEM paper", "ST paper"
    );
    println!("{}", "-".repeat(86));
    let paper_mode = PipelineConfig {
        insert: cdmm_locality::InsertOptions {
            allocate: true,
            lock: false,
        },
        sizer_mode: SizerMode::PaperBound,
        ..PipelineConfig::default()
    };
    let mut h_tight = Harness::new(env.scale());
    let mut h_paper = Harness::with_config(env.scale(), paper_mode);
    // The modes differ most on stencil codes, which Table 1 does not
    // include — scan those too.
    let rows = [
        "MAIN", "FDJAC", "TQL1", "FIELD", "CONDUCT", "HWSCRT", "APPROX",
    ];
    for row in rows {
        let tight = h_tight.cd(row);
        let paper = h_paper.cd(row);
        println!(
            "{:<8} | {:>10} {:>10.2} {:>12.3e} | {:>10} {:>10.2} {:>12.3e}",
            row,
            tight.faults,
            tight.mean_mem(),
            tight.st_cost(),
            paper.faults,
            paper.mean_mem(),
            paper.st_cost()
        );
    }
    println!();
}

/// Multiprogramming comparison: a CD-managed mix versus a WS-managed mix
/// of the same three programs in the same memory (the paper's future
/// work, Section 5), run through the fleet scheduler as one cell under
/// free admission.
///
/// The two mixes are independent simulations, so they run as executor
/// jobs; reports print in fixed order regardless of completion order.
pub fn print_multiprog(env: &BenchEnv, total_frames: u64) {
    print_multiprog_grid(env, &[total_frames]);
}

/// [`print_multiprog`] over several frame budgets, all simulated as one
/// executor grid.
pub fn print_multiprog_grid(env: &BenchEnv, frame_budgets: &[u64]) {
    let labels = ["CD ", "WS "];
    let reports = run_multiprog_mixes(env.scale(), frame_budgets, &env.executor());
    for (i, &total_frames) in frame_budgets.iter().enumerate() {
        println!("Multiprogramming: CD mix vs WS mix ({total_frames} shared frames)");
        for (label, r) in labels.iter().zip(&reports[i * 2..i * 2 + 2]) {
            println!(
                "{label}: makespan {:>12}  faults {:>8}  swaps {:>4}  cpu {:>5.1}%",
                r.makespan,
                r.total_faults,
                r.swap_events,
                r.cpu_utilization * 100.0
            );
            for t in &r.tenants {
                println!(
                    "      {:<11} PF {:>8}  MEM {:>7.2}  done at {:>12}",
                    t.name,
                    t.metrics.faults,
                    t.metrics.mean_mem(),
                    t.finished_at
                );
            }
        }
        println!();
    }
}

/// Runs the (frame budget × policy mix) grid through the executor and
/// returns reports in deterministic order: for each frame budget, the CD
/// mix then the WS mix. Each run is one three-tenant fleet cell with
/// jitter off — the classic shared-pool comparison, not a perturbed
/// fleet.
pub fn run_multiprog_mixes(
    scale: Scale,
    frame_budgets: &[u64],
    exec: &Executor,
) -> Vec<FleetReport> {
    let mixes = [
        PolicySpec::Cd {
            selector: CdSelector::FirstFit,
        },
        PolicySpec::Ws { tau: 2_000 },
    ];
    let grid: Vec<(u64, PolicySpec)> = frame_budgets
        .iter()
        .flat_map(|&f| mixes.iter().map(move |&p| (f, p)))
        .collect();
    exec.map(&grid, |_, &(total_frames, mix)| {
        let spec = FleetSpec {
            tenants: 3,
            scale,
            workloads: vec!["FDJAC".into(), "TQL".into(), "HYBRJ".into()],
            policy_mix: vec![mix],
            frames_per_cell: total_frames,
            tenants_per_cell: 3,
            admission: Admission::Free,
            jitter: false,
            ..FleetSpec::default()
        };
        run_fleet_spec(&spec).expect("fleet mix")
    })
}

/// Options for [`run_sweep_summary`].
#[derive(Debug, Clone)]
pub struct SweepSummaryOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads for the parallel runs.
    pub threads: usize,
    /// Persistent cache directory (`None` = in-memory cache).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Fail unless the table runs reach this cache hit rate (percent).
    pub assert_hit_rate: Option<f64>,
    /// Skip the serial baselines (no speedup columns; used by the CI
    /// cache-warm re-run).
    pub quick: bool,
    /// Write the `BENCH_tables.json` artifact into this directory
    /// after the table runs — the canonical machine-readable output.
    pub bench_out: Option<std::path::PathBuf>,
}

/// The old ad-hoc speedup printout: a full LRU sweep over every
/// workload, serial vs parallel, with a one-line speedup summary.
#[deprecated(
    since = "0.1.0",
    note = "ad-hoc console output with no schema; the canonical machine-readable \
            output is the BENCH_tables.json artifact (`--bench-out DIR`, \
            `tables_artifact`), gated by `perf_regress`"
)]
pub fn print_lru_sweep_speedup(scale: Scale, exec: &Executor) {
    use cdmm_core::sweep;
    use std::time::Instant;

    let threads = exec.threads();
    // Full LRU sweep over every workload, serial vs parallel, both
    // uncached: pure compute speedup.
    let workloads = cdmm_workloads::all(scale);
    let prepared: Vec<_> = exec.map(&workloads, |_, w| {
        cdmm_core::prepare(w.name, &w.source, PipelineConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
    });
    // One flat (workload × allocation) grid, so parallelism spans
    // workloads even when each program's virtual size is small.
    let jobs: Vec<(usize, usize)> = prepared
        .iter()
        .enumerate()
        .flat_map(|(i, p)| sweep::full_lru_range(p).map(move |m| (i, m)))
        .collect();
    let run_full_sweep = |e: &Executor| {
        let off = ResultCache::disabled();
        e.map(&jobs, |_, &(i, m)| {
            sweep::cached_lru(&off, &prepared[i], m).faults
        })
        .len()
    };
    let t0 = Instant::now();
    let n_serial = run_full_sweep(&Executor::serial());
    let serial = t0.elapsed();
    let t0 = Instant::now();
    let n_par = run_full_sweep(exec);
    let parallel = t0.elapsed();
    assert_eq!(n_serial, n_par);
    println!(
        "full LRU sweep ({} workloads, {} points): serial {serial:>9.3?} | {threads} threads {parallel:>9.3?} | speedup {:.2}x",
        prepared.len(),
        n_serial,
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9),
    );
    println!(
        "note: this speedup printout is deprecated; pass --bench-out DIR for the \
         canonical BENCH_tables.json artifact"
    );
}

/// Prints the execution-engine summary: full-LRU-sweep speedup, then a
/// per-table wall-clock/speedup/cache-hit report for Tables 2–4.
/// Returns an error when `assert_hit_rate` is not met.
///
/// With an `observer` attached, the parallel executor emits one
/// `job_done` event per sweep point and the result cache one
/// `cache_query` event per lookup.
pub fn run_sweep_summary(
    opts: &SweepSummaryOptions,
    observer: Option<SharedTracer>,
) -> Result<(), String> {
    use std::time::Instant;

    let threads = opts.threads.max(1);
    let mut exec = Executor::with_threads(threads);
    if let Some(t) = &observer {
        exec = exec.with_observer(t.clone());
    }
    println!(
        "Sweep engine summary ({:?} scale, {} threads, cache: {})",
        opts.scale,
        threads,
        match &opts.cache_dir {
            Some(d) => format!("persistent at {}", d.display()),
            None => "in-memory".to_string(),
        }
    );

    if !opts.quick {
        #[allow(deprecated)]
        print_lru_sweep_speedup(opts.scale, &exec);
    }

    // Per-table report against the configured cache.
    let mut cache = match &opts.cache_dir {
        Some(dir) => ResultCache::at_dir(dir).map_err(|e| format!("cache at {dir:?}: {e}"))?,
        None => ResultCache::in_memory(),
    };
    if let Some(t) = &observer {
        cache = cache.with_observer(t.clone());
    }
    if cache.discarded_entries() > 0 {
        println!(
            "cache: discarded {} corrupt persisted entries",
            cache.discarded_entries()
        );
    }
    let mut serial_h = Harness::new(opts.scale)
        .with_executor(Executor::serial())
        .with_result_cache(ResultCache::disabled());
    let mut par_h = Harness::new(opts.scale)
        .with_executor(exec)
        .with_result_cache(cache);

    type TableFn = fn(&mut Harness) -> usize;
    let tables: [(&str, TableFn); 3] = [
        ("table2", |h| table2(h).len()),
        ("table3", |h| table3(h).len()),
        ("table4", |h| table4(h).len()),
    ];
    for (name, run) in tables {
        let before = par_h.exec_stats();
        let t0 = Instant::now();
        let rows = run(&mut par_h);
        let wall = t0.elapsed();
        let d = par_h.exec_stats().since(&before);
        let speedup = if opts.quick {
            String::new()
        } else {
            let t0 = Instant::now();
            run(&mut serial_h);
            let serial = t0.elapsed();
            format!(
                " | serial {:>9.3?} speedup {:.2}x",
                serial,
                serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
            )
        };
        println!(
            "{name}: {rows} rows in {wall:>9.3?}{speedup} | cache {} hits / {} misses ({:.1}% hit, {:.2}ms/point)",
            d.cache_hits,
            d.cache_misses,
            d.hit_rate(),
            d.mean_point_ns() as f64 / 1e6,
        );
    }

    let total = par_h.exec_stats();
    println!(
        "overall: {} hits / {} misses ({:.1}% hit rate), {} points simulated",
        total.cache_hits,
        total.cache_misses,
        total.hit_rate(),
        total.sim_points
    );
    if let Ok(written) = par_h.result_cache().flush() {
        if written > 0 {
            println!("cache: persisted {written} new entries");
        }
    }
    if let Some(dir) = &opts.bench_out {
        // Cheap here: every point the artifact needs is already
        // memoized in the harness cache.
        let a = tables_artifact_from(&mut par_h, opts.scale);
        let path = a
            .write_to_dir(dir)
            .map_err(|e| format!("--bench-out {}: {e}", dir.display()))?;
        println!("artifact written to {}", path.display());
    }
    if let Some(want) = opts.assert_hit_rate {
        if total.hit_rate() < want {
            return Err(format!(
                "cache hit rate {:.1}% below required {want:.1}%",
                total.hit_rate()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_env() -> BenchEnv {
        BenchEnv::new(Options {
            scale: Scale::Small,
            threads: Some(2),
            ..Options::default()
        })
    }

    #[test]
    fn small_scale_tables_print() {
        // The printing paths must not panic at small scale.
        let env = small_env();
        print_table1(&env);
        print_lock_ablation(&env);
    }

    #[test]
    fn traced_tables_write_a_validating_event_file() {
        let path =
            std::env::temp_dir().join(format!("cdmm-bench-trace-{}.jsonl", std::process::id()));
        let env = BenchEnv::new(Options {
            scale: Scale::Small,
            threads: Some(2),
            trace_out: Some(path.clone()),
            ..Options::default()
        });
        print_table1(&env);
        env.finish();
        let lines = cdmm_vmsim::JsonlSink::validate_file(&path).expect("trace validates");
        assert!(lines > 0, "table runs emit job_done events");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_summary_asserts_hit_rate() {
        let dir = std::env::temp_dir().join(format!("cdmm-sweep-summary-{}", std::process::id()));
        let opts = SweepSummaryOptions {
            scale: Scale::Small,
            threads: 2,
            cache_dir: Some(dir.clone()),
            assert_hit_rate: None,
            quick: true,
            bench_out: None,
        };
        // Cold pass populates the cache; warm pass must hit ≥90%.
        run_sweep_summary(&opts, None).expect("cold pass");
        let warm = SweepSummaryOptions {
            assert_hit_rate: Some(90.0),
            ..opts
        };
        run_sweep_summary(&warm, None).expect("warm pass reaches 90% hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_summary_writes_the_tables_artifact() {
        let dir = std::env::temp_dir().join(format!("cdmm-sweep-artifact-{}", std::process::id()));
        let opts = SweepSummaryOptions {
            scale: Scale::Small,
            threads: 2,
            cache_dir: None,
            assert_hit_rate: None,
            quick: true,
            bench_out: Some(dir.clone()),
        };
        run_sweep_summary(&opts, None).expect("sweep with artifact");
        let a = artifact::Artifact::read_from_dir(&dir, "tables").expect("artifact written");
        assert_eq!(a.scale, "small");
        // 8 + 8 + 14 + 14 rows across the four tables.
        assert_eq!(a.entries.len(), 44);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tables_artifact_is_deterministic_and_carries_recovered() {
        let a = tables_artifact(Scale::Small, Executor::with_threads(2));
        let b = tables_artifact(Scale::Small, Executor::serial());
        assert_eq!(a, b, "thread count never changes table metrics");
        let t1 = a
            .entries
            .iter()
            .find(|e| e.id == "table1/MAIN")
            .expect("table1 row");
        assert!(t1.get("recovered").is_some(), "recovered surfaced: {t1:?}");
        assert!(t1.get("pf").is_some_and(|v| v.as_f64() > 0.0));
    }
}

/// A dependency-free micro-benchmark harness: `cargo bench` runs each
/// bench binary's `main`, which times closures with [`timing::run`] and
/// prints one line per case (min / mean over a fixed sample count).
pub mod timing {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Times `f` for `samples` samples after one warm-up call and
    /// prints `label: min .. mean per iteration`.
    pub fn run<T>(label: &str, samples: u32, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / samples;
        println!("{label:<40} min {min:>12.3?}   mean {mean:>12.3?}   ({samples} samples)");
    }
}
