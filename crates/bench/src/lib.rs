//! Shared helpers for the table-regeneration binaries and the criterion
//! benches.
//!
//! Each of the paper's tables has a binary (`cargo run --release -p
//! cdmm-bench --bin tableN`) that prints the reproduced rows next to the
//! paper's published values, plus `--bin tables` to print everything, and
//! ablation binaries for the design choices DESIGN.md calls out.

use cdmm_core::experiments::{table1, table2, table3, table4, Harness, TABLE1_ROWS};
use cdmm_core::pipeline::PipelineConfig;
use cdmm_core::report;
use cdmm_vmsim::multiprog::{run_multiprogram, MultiConfig, ProcPolicy};
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_workloads::Scale;

/// Parses the common `--small` flag used by every binary.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    }
}

/// Prints Table 1.
pub fn print_table1(scale: Scale) {
    let mut h = Harness::new(scale);
    println!("{}", report::render_table1(&table1(&mut h)));
}

/// Prints Table 2.
pub fn print_table2(scale: Scale) {
    let mut h = Harness::new(scale);
    println!("{}", report::render_table2(&table2(&mut h)));
}

/// Prints Table 3.
pub fn print_table3(scale: Scale) {
    let mut h = Harness::new(scale);
    println!("{}", report::render_table3(&table3(&mut h)));
}

/// Prints Table 4.
pub fn print_table4(scale: Scale) {
    let mut h = Harness::new(scale);
    println!("{}", report::render_table4(&table4(&mut h)));
}

/// Ablation: CD with and without the LOCK/UNLOCK directives honored.
/// The paper inserts LOCK but defers its evaluation ("the effectiveness
/// of LOCK and UNLOCK directives is not studied in this work") — this is
/// that missing measurement.
pub fn print_lock_ablation(scale: Scale) {
    println!("Ablation: CD with vs without LOCK/UNLOCK honored");
    println!(
        "{:<8} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
        "program", "PF lock", "MEM lock", "ST lock", "PF nolock", "MEM nolock", "ST nolock"
    );
    println!("{}", "-".repeat(86));
    // Locks must be inserted for this ablation; the paper-faithful
    // default harness strips them.
    let mut h = Harness::with_config(scale, PipelineConfig::default());
    for row in TABLE1_ROWS {
        let (_, variant) = h.resolve(row);
        let selector = cdmm_core::selector_for(variant.level);
        let p = h.prepared(row);
        let with = p.run_cd(selector);
        let without = p.run_cd_no_locks(selector);
        println!(
            "{:<8} | {:>10} {:>10.2} {:>12.3e} | {:>10} {:>10.2} {:>12.3e}",
            row,
            with.faults,
            with.mean_mem(),
            with.st_cost(),
            without.faults,
            without.mean_mem(),
            without.st_cost()
        );
    }
    println!();
}

/// Ablation: ALLOCATE-only instrumentation (no LOCK at compile time)
/// versus full instrumentation.
pub fn print_insertion_ablation(scale: Scale) {
    println!("Ablation: compile-time insertion of LOCK directives");
    println!(
        "{:<8} | {:>12} {:>12} | {:>12} {:>12}",
        "program", "PF full", "ST full", "PF alloc", "ST alloc"
    );
    println!("{}", "-".repeat(66));
    // `Harness::new` is already ALLOCATE-only; the "full" harness adds
    // compile-time LOCK insertion back.
    let mut h_full = Harness::with_config(scale, PipelineConfig::default());
    let mut h_alloc = Harness::new(scale);
    for row in TABLE1_ROWS {
        let full = h_full.cd(row);
        let alloc = h_alloc.cd(row);
        println!(
            "{:<8} | {:>12} {:>12.3e} | {:>12} {:>12.3e}",
            row,
            full.faults,
            full.st_cost(),
            alloc.faults,
            alloc.st_cost()
        );
    }
    println!();
}

/// Ablation: the paper's upper-bound locality counting versus the tight
/// contiguity-aware counting (DESIGN.md §5½).
pub fn print_sizer_ablation(scale: Scale) {
    use cdmm_locality::SizerMode;
    println!("Ablation: locality-size counting mode (CD at each row's default level)");
    println!(
        "{:<8} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12}",
        "program", "PF tight", "MEM tight", "ST tight", "PF paper", "MEM paper", "ST paper"
    );
    println!("{}", "-".repeat(86));
    let paper_mode = PipelineConfig {
        insert: cdmm_locality::InsertOptions {
            allocate: true,
            lock: false,
        },
        sizer_mode: SizerMode::PaperBound,
        ..PipelineConfig::default()
    };
    let mut h_tight = Harness::new(scale);
    let mut h_paper = Harness::with_config(scale, paper_mode);
    // The modes differ most on stencil codes, which Table 1 does not
    // include — scan those too.
    let rows = [
        "MAIN", "FDJAC", "TQL1", "FIELD", "CONDUCT", "HWSCRT", "APPROX",
    ];
    for row in rows {
        let tight = h_tight.cd(row);
        let paper = h_paper.cd(row);
        println!(
            "{:<8} | {:>10} {:>10.2} {:>12.3e} | {:>10} {:>10.2} {:>12.3e}",
            row,
            tight.faults,
            tight.mean_mem(),
            tight.st_cost(),
            paper.faults,
            paper.mean_mem(),
            paper.st_cost()
        );
    }
    println!();
}

/// Multiprogramming comparison: a CD-managed mix versus a WS-managed mix
/// of the same three programs in the same memory (the paper's future
/// work, Section 5).
pub fn print_multiprog(scale: Scale, total_frames: u64) {
    let names = ["FDJAC", "TQL", "HYBRJ"];
    let mk_specs = |policy_for: &dyn Fn(usize) -> ProcPolicy| {
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let w = cdmm_workloads::by_name(name, scale).expect("known workload");
                let variant = w.variants[0];
                let p = cdmm_core::prepare(w.name, &w.source, PipelineConfig::default())
                    .expect("pipeline");
                let trace = match policy_for(i) {
                    ProcPolicy::Cd { .. } => p.cd_trace().clone(),
                    _ => p.plain_trace().clone(),
                };
                let _ = variant;
                (w.name.to_string(), trace, policy_for(i))
            })
            .collect::<Vec<_>>()
    };
    let config = MultiConfig {
        total_frames,
        ..MultiConfig::default()
    };

    println!("Multiprogramming: CD mix vs WS mix ({total_frames} shared frames)");
    for (label, policy) in [
        ("CD ", ProcPolicy::Cd { min_alloc: 2 }),
        ("WS ", ProcPolicy::Ws { tau: 2_000 }),
    ] {
        let specs = mk_specs(&|_i| policy);
        let r = run_multiprogram(specs, config);
        println!(
            "{label}: makespan {:>12}  faults {:>8}  swaps {:>4}  cpu {:>5.1}%",
            r.makespan,
            r.total_faults,
            r.swap_events,
            r.cpu_utilization * 100.0
        );
        for p in &r.processes {
            println!(
                "      {:<8} PF {:>8}  MEM {:>7.2}  done at {:>12}",
                p.name,
                p.metrics.faults,
                p.metrics.mean_mem(),
                p.finished_at
            );
        }
    }
    println!();
    let _ = CdSelector::FirstFit; // referenced for doc purposes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_tables_print() {
        // The printing paths must not panic at small scale.
        print_table1(Scale::Small);
        print_lock_ablation(Scale::Small);
    }
}

/// A dependency-free micro-benchmark harness: `cargo bench` runs each
/// bench binary's `main`, which times closures with [`timing::run`] and
/// prints one line per case (min / mean over a fixed sample count).
pub mod timing {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Times `f` for `samples` samples after one warm-up call and
    /// prints `label: min .. mean per iteration`.
    pub fn run<T>(label: &str, samples: u32, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / samples;
        println!("{label:<40} min {min:>12.3?}   mean {mean:>12.3?}   ({samples} samples)");
    }
}
