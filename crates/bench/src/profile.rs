//! Hot-loop profiler: per-phase wall time and references/second for
//! every workload × policy, emitted as a `BENCH_perf.json`
//! [`Artifact`].
//!
//! Each profiled cell runs three phases, mirroring the pipeline:
//!
//! 1. **prepare** — compile → instrument → trace,
//! 2. **simulate** — the untraced hot loop; `refs_per_sec` comes from
//!    this phase,
//! 3. **report** — a metrics-registry-attached run plus scorecard
//!    rendering, the full observability cost.
//!
//! Every phase is timed as the minimum over `samples` calibrated
//! batches (minimum, not mean: scheduler noise only ever adds time;
//! batches so one sample spans ≥10ms even for the ~100µs small-scale
//! cells).
//!
//! Entries also carry the run's deterministic simulation metrics
//! (`refs`, `faults`, `mean_mem`, `st`): the regression gate compares
//! those exactly (drift means the simulator changed behavior), while
//! the `_ns`/`refs_per_sec` wall fields get noise-aware thresholds —
//! see [`crate::regress`].

use std::time::Instant;

use cdmm_core::report::scorecard;
use cdmm_core::sweep::{self, Executor, ResultCache};
use cdmm_core::{prepare, PipelineConfig, PolicySpec, Prepared};
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_vmsim::MetricsRegistry;
use cdmm_workloads::Scale;

use crate::artifact::{Artifact, Entry};

/// The fixed policy set every workload is profiled under. Parameters
/// are pinned (CD at level 2, LRU at 8 frames, WS at τ=2000) so the
/// fault-metric columns are machine-independent.
pub const POLICIES: [(&str, PolicySpec); 3] = [
    (
        "CD",
        PolicySpec::Cd {
            selector: CdSelector::AtLevel(2),
        },
    ),
    ("LRU", PolicySpec::Lru { frames: 8 }),
    ("WS", PolicySpec::Ws { tau: 2_000 }),
];

/// Profiler configuration.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Restrict to these workload names (`None` = all nine). Unknown
    /// names are ignored, so a reduced CI set survives renames.
    pub workloads: Option<Vec<String>>,
    /// Simulate-phase repetitions; the minimum is reported.
    pub samples: u32,
}

impl ProfileOptions {
    /// Default profile at the given scale: all workloads, min-of-3.
    pub fn at_scale(scale: Scale) -> Self {
        ProfileOptions {
            scale,
            workloads: None,
            samples: 3,
        }
    }
}

/// The artifact `scale` tag for a workload scale.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Small => "small",
    }
}

/// Minimum span one timing sample must cover. Small-scale cells
/// simulate in ~100µs, far below scheduler noise; batching until a
/// sample spans this long keeps the min-of-samples stable enough for
/// the default 10% gate on an otherwise idle machine.
const MIN_SAMPLE_NS: u128 = 10_000_000;

/// Times `f` as the minimum over `samples` calibrated batches and
/// returns the per-call nanoseconds (plus the last return value).
fn timed_min<T>(samples: u32, mut f: impl FnMut() -> T) -> (u64, T) {
    let mut out = std::hint::black_box(f()); // warm-up
    let mut iters = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            out = std::hint::black_box(f());
        }
        if t0.elapsed().as_nanos() >= MIN_SAMPLE_NS || iters >= 1 << 14 {
            break;
        }
        iters *= 2;
    }
    let mut best = u128::MAX;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            out = std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos());
    }
    ((best / u128::from(iters)) as u64, out)
}

fn profile_cell(prepared: &Prepared, policy: PolicySpec, samples: u32) -> (Entry, String) {
    let label_policy = prepared.policy_label(policy);
    let (simulate_ns, metrics) = timed_min(samples, || prepared.run_policy(policy));
    let (report_ns, (observed, scorecard)) = timed_min(samples, || {
        let mut registry = MetricsRegistry::new();
        let m = prepared.run_policy_with(policy, &mut registry);
        (m, scorecard::render_markdown(&registry.snapshot()))
    });
    assert_eq!(
        observed, metrics,
        "an attached registry never changes simulation numbers"
    );
    let secs = (simulate_ns as f64 / 1e9).max(1e-12);
    let entry = Entry::new(format!("{}/{label_policy}", prepared.name()))
        .int("refs", metrics.refs)
        .int("faults", metrics.faults)
        .float("fault_rate", metrics.fault_rate())
        .float("mean_mem", metrics.mean_mem())
        .float("st", metrics.st_cost())
        .int("simulate_ns", simulate_ns)
        .int("report_ns", report_ns)
        .float("refs_per_sec", metrics.refs as f64 / secs);
    (entry, scorecard)
}

/// Profiles one whole-family sweep (the paper's per-table workhorse)
/// through the dispatching sweep entry points, so the row times
/// whatever engine is in force: the one-pass curve kernels by default,
/// per-point simulation under `CDMM_SWEEP_KERNELS=0`. Each sample runs
/// against its own fresh in-memory cache — the cost of one *cold*
/// sweep, exactly what a table pays for a program it has not seen.
///
/// `refs` is the reference volume a *per-point* sweep must process
/// (`points × trace refs`) — the fixed work the row's `refs_per_sec`
/// is normalized by, making kernel-vs-per-point throughput directly
/// comparable across artifacts. `faults` (summed over the sweep) is
/// deterministic and exact-compared: it drifts only if the sweep
/// engine changes *answers*, not speed.
fn profile_sweep_cell(
    prepared: &Prepared,
    family: &str,
    samples: u32,
    run: impl FnMut() -> Vec<sweep::Point>,
) -> Entry {
    let (sweep_ns, points) = timed_min(samples, run);
    let work_refs = prepared.plain_trace().ref_count() * points.len() as u64;
    let faults: u64 = points.iter().map(|pt| pt.metrics.faults).sum();
    let secs = (sweep_ns as f64 / 1e9).max(1e-12);
    Entry::new(format!("{}/sweep/{family}", prepared.name()))
        .int("points", points.len() as u64)
        .int("refs", work_refs)
        .int("faults", faults)
        .int("simulate_ns", sweep_ns)
        .float("refs_per_sec", work_refs as f64 / secs)
}

/// Runs the profiler and returns the `perf` artifact plus the last
/// scorecard rendered (a human-readable sample for the console).
pub fn profile(opts: &ProfileOptions) -> (Artifact, String) {
    let mut artifact = Artifact::new("perf", scale_tag(opts.scale));
    let mut last_scorecard = String::new();
    for w in cdmm_workloads::all(opts.scale) {
        if let Some(only) = &opts.workloads {
            if !only.iter().any(|n| n.eq_ignore_ascii_case(w.name)) {
                continue;
            }
        }
        let (prepare_ns, prepared) = timed_min(opts.samples, || {
            prepare(w.name, &w.source, PipelineConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        });
        for (_, policy) in POLICIES {
            let (entry, scorecard) = profile_cell(&prepared, policy, opts.samples);
            artifact.entries.push(entry.int("prepare_ns", prepare_ns));
            last_scorecard = scorecard;
        }
        let exec = Executor::serial();
        artifact
            .entries
            .push(profile_sweep_cell(&prepared, "lru", opts.samples, || {
                sweep::lru_sweep_with(
                    &exec,
                    &ResultCache::in_memory(),
                    &prepared,
                    sweep::full_lru_range(&prepared),
                )
            }));
        let taus = sweep::ws_tau_grid(&prepared, 8);
        artifact
            .entries
            .push(profile_sweep_cell(&prepared, "ws", opts.samples, || {
                sweep::ws_sweep_with(&exec, &ResultCache::in_memory(), &prepared, taus.clone())
            }));
    }
    (artifact, last_scorecard)
}

/// Renders a console summary of a perf artifact: one line per entry.
pub fn render_summary(artifact: &Artifact) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>10} {:>8} {:>12} {:>12}",
        "workload/policy", "refs", "faults", "sim", "refs/sec"
    );
    for e in &artifact.entries {
        let ns = e.get("simulate_ns").map_or(0.0, |v| v.as_f64());
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>8} {:>9.3}ms {:>12.3e}",
            e.id,
            e.get("refs").map_or(0.0, |v| v.as_f64()),
            e.get("faults").map_or(0.0, |v| v.as_f64()),
            ns / 1e6,
            e.get("refs_per_sec").map_or(0.0, |v| v.as_f64()),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::is_wall_field;

    fn quick() -> ProfileOptions {
        ProfileOptions {
            scale: Scale::Small,
            workloads: Some(vec!["MAIN".to_string()]),
            samples: 1,
        }
    }

    #[test]
    fn one_workload_profiles_all_three_policies() {
        let (a, scorecard) = profile(&quick());
        assert_eq!(a.kind, "perf");
        assert_eq!(a.scale, "small");
        // Three policy cells plus the two whole-family sweep rows.
        assert_eq!(a.entries.len(), POLICIES.len() + 2);
        let ids: Vec<&str> = a.entries.iter().map(|e| e.id.as_str()).collect();
        assert!(ids[0].starts_with("MAIN/CD"), "{ids:?}");
        assert_eq!(ids[POLICIES.len()], "MAIN/sweep/lru", "{ids:?}");
        assert_eq!(ids[POLICIES.len() + 1], "MAIN/sweep/ws", "{ids:?}");
        for e in &a.entries {
            assert!(e.get("refs").is_some_and(|v| v.as_f64() > 0.0));
            assert!(e.get("refs_per_sec").is_some_and(|v| v.as_f64() > 0.0));
            let wall: Vec<&str> = e
                .fields
                .iter()
                .map(|(n, _)| n.as_str())
                .filter(|n| is_wall_field(n))
                .collect();
            if e.id.contains("/sweep/") {
                assert!(e.get("points").is_some_and(|v| v.as_f64() > 0.0));
                assert_eq!(wall, vec!["simulate_ns", "refs_per_sec"]);
            } else {
                assert!(e.get("prepare_ns").is_some());
                assert_eq!(
                    wall,
                    vec!["simulate_ns", "report_ns", "refs_per_sec", "prepare_ns"]
                );
            }
        }
        assert!(
            scorecard.contains("| histogram |") || scorecard.contains("| metric |"),
            "{scorecard}"
        );
    }

    #[test]
    fn deterministic_fields_repeat_across_runs() {
        let (a, _) = profile(&quick());
        let (b, _) = profile(&quick());
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.id, eb.id);
            for (name, va) in &ea.fields {
                if !is_wall_field(name) {
                    assert_eq!(Some(*va), eb.get(name), "{}/{name} drifted", ea.id);
                }
            }
        }
    }

    #[test]
    fn summary_renders_one_line_per_entry() {
        let (a, _) = profile(&quick());
        let s = render_summary(&a);
        assert_eq!(s.lines().count(), 1 + a.entries.len());
    }
}
