//! Hot-loop profiler: times prepare/simulate/report for every workload
//! × {CD, LRU, WS} and writes the schema-versioned `BENCH_perf.json`
//! artifact.
//!
//! ```text
//! perf_report [--small] [--bench-out DIR]
//! ```
//!
//! The artifact lands in `--bench-out` (default `target/bench`). Set
//! `CDMM_PROFILE_WORKLOADS=MAIN,FDJAC` to profile a reduced workload
//! set (the CI perf job does this to bound runtime) and
//! `CDMM_PROFILE_SAMPLES=N` to change the min-of-N simulate timing.
//! Compare the result against the checked-in baselines with
//! `perf_regress`.

use std::path::PathBuf;

use cdmm_bench::profile::{profile, render_summary, ProfileOptions};
use cdmm_bench::BenchEnv;

fn main() {
    let env = BenchEnv::from_env();
    let mut opts = ProfileOptions::at_scale(env.scale());
    if let Ok(names) = std::env::var("CDMM_PROFILE_WORKLOADS") {
        opts.workloads = Some(names.split(',').map(|s| s.trim().to_string()).collect());
    }
    if let Ok(n) = std::env::var("CDMM_PROFILE_SAMPLES") {
        opts.samples = n
            .parse()
            .unwrap_or_else(|_| panic!("CDMM_PROFILE_SAMPLES: cannot parse {n:?}"));
    }
    let (artifact, scorecard) = profile(&opts);
    print!("{}", render_summary(&artifact));
    println!("\nlast scorecard:\n{scorecard}");
    let dir = env
        .options()
        .bench_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/bench"));
    let path = artifact
        .write_to_dir(&dir)
        .unwrap_or_else(|e| panic!("--bench-out {}: {e}", dir.display()));
    println!("artifact written to {}", path.display());
    env.finish();
}
