//! Ablation studies for the design choices DESIGN.md calls out:
//! honoring LOCK/UNLOCK at run time, and inserting LOCK at compile time.
//! Pass `--small` for the reduced test scale.

fn main() {
    let scale = cdmm_bench::scale_from_args();
    cdmm_bench::print_lock_ablation(scale);
    cdmm_bench::print_insertion_ablation(scale);
    cdmm_bench::print_sizer_ablation(scale);
}
