//! Ablation studies for the design choices DESIGN.md calls out:
//! honoring LOCK/UNLOCK at run time, and inserting LOCK at compile time.
//! Pass `--small` for the reduced test scale; see `--help` for the
//! full flag set.

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    cdmm_bench::print_lock_ablation(&env);
    cdmm_bench::print_insertion_ablation(&env);
    cdmm_bench::print_sizer_ablation(&env);
    env.finish();
}
