//! Execution-engine benchmark: per-table speedup and cache-hit summary.
//!
//! ```text
//! sweep_bench [--small] [--threads N] [--cache-dir PATH]
//!             [--assert-hit-rate PCT] [--quick]
//! ```
//!
//! Without `--cache-dir` the run uses an in-memory cache. A first run
//! against a persistent directory populates it; an immediate re-run
//! with `--quick --assert-hit-rate 90` verifies the warm-cache path
//! (the CI cache-warm step).

use std::process::ExitCode;

use cdmm_bench::{exec_from_args, run_sweep_summary, scale_from_args, SweepSummaryOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let opts = SweepSummaryOptions {
        scale: scale_from_args(),
        threads: exec_from_args().threads(),
        cache_dir: value_of("--cache-dir").map(Into::into),
        assert_hit_rate: value_of("--assert-hit-rate").and_then(|v| v.parse().ok()),
        quick: args.iter().any(|a| a == "--quick"),
    };
    match run_sweep_summary(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sweep_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
