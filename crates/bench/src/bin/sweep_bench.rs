//! Execution-engine benchmark: per-table speedup and cache-hit summary.
//!
//! ```text
//! sweep_bench [--small] [--threads N] [--cache-dir PATH]
//!             [--assert-hit-rate PCT] [--quick]
//!             [--trace-out PATH] [--trace-events]
//! ```
//!
//! Without `--cache-dir` the run uses an in-memory cache. A first run
//! against a persistent directory populates it; an immediate re-run
//! with `--quick --assert-hit-rate 90` verifies the warm-cache path
//! (the CI cache-warm step). With `--trace-out` the executor and cache
//! stream `job_done` / `cache_query` events into a checksummed JSONL
//! file. With `--bench-out DIR` the run writes the canonical
//! `BENCH_tables.json` artifact (the old console speedup printout is
//! deprecated in its favor).

use std::process::ExitCode;

use cdmm_bench::{run_sweep_summary, BenchEnv, SweepSummaryOptions};

fn main() -> ExitCode {
    let env = BenchEnv::from_env();
    let o = env.options();
    let opts = SweepSummaryOptions {
        scale: o.scale,
        threads: o.executor().threads(),
        cache_dir: o.cache_dir.clone(),
        assert_hit_rate: o.assert_hit_rate,
        quick: o.quick,
        bench_out: o.bench_out.clone(),
    };
    let result = run_sweep_summary(&opts, env.tracer().cloned());
    env.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sweep_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
