//! Regenerates Table 4 of the paper. Pass `--small` for the reduced
//! test scale; see `--help` for the full flag set.

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    cdmm_bench::print_table4(&env);
    env.finish();
}
