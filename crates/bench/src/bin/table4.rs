//! Regenerates Table 4 of the paper. Pass `--small` for the reduced
//! test scale.

fn main() {
    cdmm_bench::print_table4(cdmm_bench::scale_from_args());
}
