//! Regenerates Table 3 of the paper. Pass `--small` for the reduced
//! test scale.

fn main() {
    cdmm_bench::print_table3(cdmm_bench::scale_from_args());
}
