//! Regenerates all four tables of the paper's evaluation section.
//! Pass `--small` for the reduced test scale; see `--help` for the
//! full flag set.

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    cdmm_bench::print_table1(&env);
    cdmm_bench::print_table2(&env);
    cdmm_bench::print_table3(&env);
    cdmm_bench::print_table4(&env);
    if let Some(dir) = &env.options().bench_out {
        let a = cdmm_bench::tables_artifact(env.scale(), env.executor());
        let path = a
            .write_to_dir(dir)
            .unwrap_or_else(|e| panic!("--bench-out {}: {e}", dir.display()));
        eprintln!("artifact written to {}", path.display());
    }
    env.finish();
}
