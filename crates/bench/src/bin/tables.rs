//! Regenerates all four tables of the paper's evaluation section.
//! Pass `--small` for the reduced test scale; see `--help` for the
//! full flag set.

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    cdmm_bench::print_table1(&env);
    cdmm_bench::print_table2(&env);
    cdmm_bench::print_table3(&env);
    cdmm_bench::print_table4(&env);
    env.finish();
}
