//! Regenerates all four tables of the paper's evaluation section.
//! Pass `--small` for the reduced test scale.

fn main() {
    let scale = cdmm_bench::scale_from_args();
    cdmm_bench::print_table1(scale);
    cdmm_bench::print_table2(scale);
    cdmm_bench::print_table3(scale);
    cdmm_bench::print_table4(scale);
}
