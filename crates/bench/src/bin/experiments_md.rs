//! Emits the measured-vs-paper tables as Markdown for `EXPERIMENTS.md`.
//! Pass `--small` for the reduced test scale.

use cdmm_core::experiments::{table1, table2, table3, table4, Harness};
use cdmm_core::report::render_markdown;

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    let mut h = Harness::new(env.scale());
    let t1 = table1(&mut h);
    let t2 = table2(&mut h);
    let t3 = table3(&mut h);
    let t4 = table4(&mut h);
    print!("{}", render_markdown(&t1, &t2, &t3, &t4));
    env.finish();
}
