//! The perf-regression gate: regenerates fresh `BENCH_perf.json` and
//! `BENCH_tables.json` artifacts and diffs them against the checked-in
//! baselines in `crates/bench/baselines/`.
//!
//! ```text
//! perf_regress [--small] [--threads N] [--bench-out DIR]
//! ```
//!
//! Exit status is non-zero on any hard finding: a deterministic
//! fault-metric drift, a missing or extra entry, or (unless advisory)
//! a wall-clock regression past the tolerance. Knobs:
//!
//! - `CDMM_BLESS=1` — overwrite the baselines with the fresh artifacts
//!   instead of comparing (run after an intended perf or metric
//!   change, then commit the diff).
//! - `CDMM_WALL_ADVISORY=1` — downgrade wall-clock findings to
//!   warnings (shared CI runners; fault-metric drift stays hard).
//! - `CDMM_PERF_TOLERANCE=PCT` — wall-clock tolerance (default 10).
//! - `CDMM_BASELINE_DIR=DIR` — baseline directory override.
//! - `CDMM_PROFILE_WORKLOADS=A,B` — profile (and gate) only these
//!   workloads; the baseline is subset to match, so a bounded CI run
//!   is not failed for workloads it never profiled.
//!
//! With `--bench-out DIR` the fresh artifacts are also written there
//! (the CI job uploads them for later inspection). Baselines are
//! scale-tagged; compare at the scale they were blessed at (`--small`
//! for the checked-in ones).

use std::path::PathBuf;
use std::process::ExitCode;

use cdmm_bench::artifact::Artifact;
use cdmm_bench::profile::{profile, ProfileOptions};
use cdmm_bench::regress::{
    aggregate_refs_per_sec, check_speedup, compare, has_hard, retain_rows, retain_workloads,
    RegressOptions,
};
use cdmm_bench::{tables_artifact, BenchEnv};

fn baseline_dir() -> PathBuf {
    match std::env::var("CDMM_BASELINE_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines")),
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

fn main() -> ExitCode {
    let env = BenchEnv::from_env();
    let mut popts = ProfileOptions::at_scale(env.scale());
    if let Ok(names) = std::env::var("CDMM_PROFILE_WORKLOADS") {
        popts.workloads = Some(names.split(',').map(|s| s.trim().to_string()).collect());
    }
    let (perf, _) = profile(&popts);
    let tables = tables_artifact(env.scale(), env.executor());
    let fresh = [perf, tables];

    if let Some(dir) = &env.options().bench_out {
        for a in &fresh {
            let path = a
                .write_to_dir(dir)
                .unwrap_or_else(|e| panic!("--bench-out {}: {e}", dir.display()));
            println!("fresh artifact written to {}", path.display());
        }
    }

    let dir = baseline_dir();
    if env_flag("CDMM_BLESS") {
        for a in &fresh {
            let path = a
                .write_to_dir(&dir)
                .unwrap_or_else(|e| panic!("bless {}: {e}", dir.display()));
            println!("blessed {}", path.display());
        }
        env.finish();
        return ExitCode::SUCCESS;
    }

    let opts = RegressOptions {
        wall_tolerance_pct: std::env::var("CDMM_PERF_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0),
        advisory_wall: env_flag("CDMM_WALL_ADVISORY"),
    };
    let mut failed = false;
    for a in &fresh {
        let mut baseline = match Artifact::read_from_dir(&dir, &a.kind) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("perf_regress: {e} (CDMM_BLESS=1 to create baselines)");
                failed = true;
                continue;
            }
        };
        if a.kind == "perf" {
            if let Some(only) = &popts.workloads {
                retain_workloads(&mut baseline, only);
                println!(
                    "BENCH_perf: gating the CDMM_PROFILE_WORKLOADS subset \
                     ({} baseline entries)",
                    baseline.entries.len()
                );
            }
        }
        let findings = compare(&baseline, a, &opts);
        for f in &findings {
            println!("BENCH_{}: {f}", a.kind);
        }
        if has_hard(&findings) {
            failed = true;
        } else {
            println!(
                "BENCH_{}: {} entries match the baseline ({} advisory)",
                a.kind,
                a.entries.len(),
                findings.len()
            );
        }
    }
    // Trajectory speedup milestone: compare the fresh perf artifact's
    // aggregate simulate throughput against an archived baseline (a
    // file under baselines/trajectory/), e.g. the pre-run-level
    // snapshot with a >=5x target. Wall-clock, so CDMM_WALL_ADVISORY
    // downgrades a miss to a warning.
    if let Ok(path) = std::env::var("CDMM_SPEEDUP_BASELINE") {
        let min_speedup = std::env::var("CDMM_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5.0);
        let mut old = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Artifact::from_json(&text))
            .unwrap_or_else(|e| panic!("CDMM_SPEEDUP_BASELINE {path}: {e}"));
        let mut perf = fresh[0].clone();
        // CDMM_SPEEDUP_ROWS=SUBSTR narrows the milestone to one row
        // family on both sides (e.g. `sweep` to gate just the one-pass
        // sweep-kernel rows).
        if let Ok(rows) = std::env::var("CDMM_SPEEDUP_ROWS") {
            retain_rows(&mut old, &rows);
            retain_rows(&mut perf, &rows);
            println!(
                "BENCH_perf speedup: gating rows matching {rows:?} \
                 ({} baseline / {} fresh entries)",
                old.entries.len(),
                perf.entries.len()
            );
        }
        let perf = &perf;
        let findings = check_speedup(&old, perf, min_speedup, &opts);
        for f in &findings {
            println!("BENCH_perf speedup: {f}");
        }
        if has_hard(&findings) {
            failed = true;
        } else if findings.is_empty() {
            println!(
                "BENCH_perf speedup: {:.3e} refs/sec aggregate, {:.2}x the archived {:.3e} \
                 (milestone >={min_speedup}x met)",
                aggregate_refs_per_sec(perf),
                aggregate_refs_per_sec(perf) / aggregate_refs_per_sec(&old),
                aggregate_refs_per_sec(&old),
            );
        }
    }

    env.finish();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
