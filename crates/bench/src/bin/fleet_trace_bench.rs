//! Fleet trace-overhead check: attaching a scheduler-plane tracer to
//! the fleet scheduler must cost within a small margin of the
//! `NullTracer` path, and must not perturb the deterministic report.
//!
//! ```text
//! fleet_trace_bench [--small] [--threads N] [--quick]
//! ```
//!
//! Both sides run min-of-N over the same seeded mixed fleet: the
//! baseline with `NullTracer` (the production fast path — batch
//! kernels, no event buffering) and the traced side with an in-memory
//! [`EventLog`] whose policy-event appetite is off, i.e. the scheduler
//! observability plane alone (admissions, deferrals, queue depth,
//! swap-outs). The binary fails when the traced side exceeds the
//! baseline by more than the threshold (default 2%, override with
//! `CDMM_OVERHEAD_PCT` — CI runners with noisy neighbors may need a
//! looser bound). Report equality is asserted first: a fast tracer
//! that changes the schedule is no win.
//!
//! `CDMM_FLEET_TENANTS` / `CDMM_FLEET_SEED` override the fleet shape.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use cdmm_bench::BenchEnv;
use cdmm_core::fleet::{prepare_fleet, FleetSpec};
use cdmm_core::pipeline::PolicySpec;
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_vmsim::{CancelToken, EventLog, FleetReport, NullTracer, Tracer};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// One timed fleet run; tracer construction is excluded from the
/// measurement, preparation is not (both sides pay it identically).
fn timed_run(spec: &FleetSpec, tracer: &mut dyn Tracer) -> (Duration, FleetReport) {
    let prepared = prepare_fleet(spec).expect("fleet prepares");
    let token = CancelToken::new();
    let t0 = Instant::now();
    let report = prepared
        .run_cancellable(tracer, &token)
        .expect("fleet runs");
    (t0.elapsed(), report)
}

fn main() -> ExitCode {
    let env = BenchEnv::from_env();
    let o = env.options();
    let threshold: f64 = std::env::var("CDMM_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let samples = if o.quick { 3 } else { 7 };
    let tenants = env_u64("CDMM_FLEET_TENANTS").unwrap_or(96) as usize;
    let seed = env_u64("CDMM_FLEET_SEED").unwrap_or(1);
    let spec = FleetSpec {
        tenants,
        seed,
        scale: env.scale(),
        policy_mix: vec![
            PolicySpec::Cd {
                selector: CdSelector::FirstFit,
            },
            PolicySpec::Ws { tau: 2_000 },
            PolicySpec::Lru { frames: 16 },
        ],
        frames_per_cell: 24,
        threads: o.executor().threads(),
        ..FleetSpec::default()
    };

    // Equality first, outside the timing loop.
    let (_, untraced) = timed_run(&spec, &mut NullTracer);
    let mut log = EventLog::new(1 << 20).with_policy_events(false);
    let (_, traced) = timed_run(&spec, &mut log);
    assert_eq!(
        untraced, traced,
        "a scheduler-plane tracer must not perturb the fleet report"
    );
    assert!(
        log.len() > 0,
        "the scheduler plane must actually emit events"
    );

    // Interleaved min-of-N so slow machine drift lands on both sides.
    let mut min_base = Duration::MAX;
    let mut min_traced = Duration::MAX;
    for _ in 0..samples {
        min_base = min_base.min(timed_run(&spec, &mut NullTracer).0);
        let mut log = EventLog::new(1 << 20).with_policy_events(false);
        min_traced = min_traced.min(timed_run(&spec, &mut log).0);
    }
    let overhead = (min_traced.as_secs_f64() / min_base.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    println!(
        "fleet_trace_bench: {tenants} tenants, NullTracer {min_base:.3?}, \
         scheduler-plane tracer {min_traced:.3?}, overhead {overhead:.2}% \
         (threshold {threshold:.1}%, {} events)",
        log.len()
    );
    env.finish();
    if overhead > threshold {
        eprintln!(
            "fleet_trace_bench: tracer overhead {overhead:.2}% exceeds {threshold:.1}% \
             (set CDMM_OVERHEAD_PCT to loosen on noisy machines)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
