//! Tracing-overhead check: the disabled-tracer (`NullTracer`) simulate
//! path must cost within a small margin of a driver loop with no
//! tracing hooks at all.
//!
//! ```text
//! trace_bench [--small] [--trace-out PATH] [--trace-events]
//! ```
//!
//! The baseline is a re-implementation of the pre-observability driver
//! loop (reference → record → degraded check, directives forwarded, no
//! tracer branches), built on the same public `Metrics`/`Policy` API.
//! Both sides run min-of-N on the same prepared workloads; the binary
//! fails when the `NullTracer` path exceeds the baseline by more than
//! the threshold (default 2%, override with `CDMM_OVERHEAD_PCT` — CI
//! runners with noisy neighbors may need a looser bound).
//!
//! With `--trace-out` it additionally demonstrates the enabled path:
//! one traced CD run per workload, streamed to the JSONL sink.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use cdmm_bench::BenchEnv;
use cdmm_core::{prepare, PipelineConfig, Prepared};
use cdmm_trace::{EventRef, EventSource};
use cdmm_vmsim::policy::cd::{CdPolicy, CdSelector};
use cdmm_vmsim::policy::lru::Lru;
use cdmm_vmsim::policy::Policy;
use cdmm_vmsim::{simulate, Metrics, SharedSink, SimConfig};

/// The seed driver loop, byte-for-byte the logic `simulate` had before
/// the observability layer: no tracer, no event draining.
fn seed_loop(p: &Prepared, policy: &mut dyn Policy) -> Metrics {
    let config = SimConfig {
        fault_service: p.config().fault_service,
    };
    let mut metrics = Metrics::new(config.fault_service);
    p.plain_trace().for_each_event(|event| match event {
        EventRef::Ref(page) => {
            let fault = policy.reference(page);
            metrics.record(policy.resident(), fault);
            if policy.is_degraded() {
                metrics.degraded_refs += 1;
            }
        }
        EventRef::Directive(other) => policy.directive(other),
    });
    metrics.recovered_directives = policy.recovered_directives();
    metrics
}

/// Min-of-N for two alternating measurements. Interleaving means slow
/// drift (frequency scaling, thermal ramps) lands on both sides equally
/// instead of biasing whichever was measured second.
fn min_pair<A, B>(
    samples: u32,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> (Duration, Duration) {
    let mut min_a = Duration::MAX;
    let mut min_b = Duration::MAX;
    std::hint::black_box(a());
    std::hint::black_box(b());
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(a());
        min_a = min_a.min(t0.elapsed());
        let t0 = Instant::now();
        std::hint::black_box(b());
        min_b = min_b.min(t0.elapsed());
    }
    (min_a, min_b)
}

fn main() -> ExitCode {
    let env = BenchEnv::from_env();
    let threshold: f64 = std::env::var("CDMM_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let samples = 40;
    let names = ["MAIN", "FDJAC", "CONDUCT"];
    let prepared: Vec<Prepared> = names
        .iter()
        .map(|n| {
            let w = cdmm_workloads::by_name(n, env.scale()).expect("known workload");
            prepare(w.name, &w.source, PipelineConfig::default())
                .unwrap_or_else(|e| panic!("{n}: {e}"))
        })
        .collect();

    let frames = 8;
    let cfg = SimConfig::default();
    let mut worst: f64 = f64::NEG_INFINITY;
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "program", "seed loop", "NullTracer", "overhead"
    );
    for p in &prepared {
        let (baseline, traced) = min_pair(
            samples,
            || seed_loop(p, &mut Lru::new(frames)),
            || simulate(p.plain_trace(), &mut Lru::new(frames), cfg),
        );
        // Equal metrics first — a fast wrong path is no win.
        assert_eq!(
            seed_loop(p, &mut Lru::new(frames)),
            simulate(p.plain_trace(), &mut Lru::new(frames), cfg),
            "{}: NullTracer path must be result-identical",
            p.name()
        );
        let overhead = (traced.as_secs_f64() / baseline.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        worst = worst.max(overhead);
        println!(
            "{:<10} {:>14.3?} {:>14.3?} {:>8.2}%",
            p.name(),
            baseline,
            traced,
            overhead
        );
    }

    if let Some(tracer) = env.tracer() {
        for p in &prepared {
            let mut sink = SharedSink::new(tracer);
            let m = p.run_cd_with(CdSelector::AtLevel(2), &mut sink);
            let plain = {
                let mut cd =
                    CdPolicy::new(CdSelector::AtLevel(2)).with_min_alloc(p.config().min_alloc);
                simulate(p.cd_trace(), &mut cd, cfg)
            };
            assert_eq!(m, plain, "{}: traced CD run must be identical", p.name());
        }
        println!("traced CD runs streamed to the JSONL sink (metrics identical)");
    }
    env.finish();

    println!("worst overhead {worst:.2}% (threshold {threshold:.1}%)");
    if worst > threshold {
        eprintln!(
            "trace_bench: NullTracer overhead {worst:.2}% exceeds {threshold:.1}% \
             (set CDMM_OVERHEAD_PCT to loosen on noisy machines)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
