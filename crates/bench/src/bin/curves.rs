//! Operating-curve experiment (an extended "figure"): PF-vs-MEM curves
//! for LRU, WS and the VMIN optimal frontier, with CD's directive-set
//! points overlaid. Pass `--small` for the reduced test scale.

use cdmm_core::curves;
use cdmm_core::experiments::Harness;

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    let mut h = Harness::new(env.scale());
    for row in ["MAIN", "FDJAC", "CONDUCT"] {
        let (w, _) = h.resolve(row);
        let variants = w.variants.clone();
        let name = w.name;
        let p = h.prepared(row);
        println!(
            "=== {name} (R = {}, V = {}) ===",
            p.plain_trace().ref_count(),
            p.virtual_pages()
        );

        let frontier = curves::vmin_curve(p, 4);
        for (label, curve) in [
            ("LRU", curves::lru_curve(p)),
            ("WS", curves::ws_curve(p, 4)),
            ("VMIN", frontier.clone()),
        ] {
            println!("  {label} curve (param, MEM, PF):");
            let step = (curve.len() / 8).max(1);
            for pt in curve.iter().step_by(step) {
                println!("    {:>8} {:>9.2} {:>8}", pt.param, pt.mem, pt.pf);
            }
        }
        println!("  CD points (variant, MEM, PF, frontier gap):");
        for (vname, pt) in curves::cd_points(p, &variants) {
            println!(
                "    {:<10} {:>9.2} {:>8}   {:>6.2}x",
                vname,
                pt.mem,
                pt.pf,
                curves::frontier_gap(&pt, &frontier)
            );
        }
        println!();
    }
    env.finish();
}
