//! Anomaly scan over the nine workloads: WS dead-memory stretches and
//! FIFO Belady violations — the misbehaviours of run-time estimation
//! policies that motivate the CD design (paper §1).
//! Pass `--small` for the reduced test scale.

use cdmm_core::anomalies::{fifo_belady_anomalies, ws_memory_anomalies};
use cdmm_core::experiments::Harness;

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    let mut h = Harness::new(env.scale());
    for row in [
        "MAIN", "FDJAC", "TQL1", "FIELD", "INIT", "APPROX", "HYBRJ", "CONDUCT", "HWSCRT",
    ] {
        let (w, _) = h.resolve(row);
        let name = w.name;
        let p = h.prepared(row);
        println!("=== {name} ===");
        let ws = ws_memory_anomalies(p, 1.0);
        if ws.is_empty() {
            println!("  WS: no dead-memory stretches >= 1 page");
        }
        for a in ws {
            println!(
                "  WS: tau {} -> {} holds {:.1} extra pages for the same {} faults",
                a.tau_small, a.tau_large, a.extra_mem, a.faults
            );
        }
        let fifo = fifo_belady_anomalies(p, 40.min(p.virtual_pages() as usize).max(2));
        if fifo.is_empty() {
            println!("  FIFO: monotone up to the scanned allocations");
        }
        for a in fifo {
            println!(
                "  FIFO: {} -> {} frames RAISES faults {} -> {} (Belady)",
                a.frames_small, a.frames_large, a.faults_small, a.faults_large
            );
        }
        println!();
    }
    env.finish();
}
