//! Multiprogramming comparison (the paper's stated future work): the
//! same three-program mix under CD's PI-driven first-fit allocation and
//! under the Working Set policy, sharing one memory.
//! Pass `--small` for the reduced test scale.

fn main() {
    let scale = cdmm_bench::scale_from_args();
    cdmm_bench::print_multiprog_grid(scale, &[48, 96, 192]);
}
