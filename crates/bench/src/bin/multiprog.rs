//! Multiprogramming comparison (the paper's stated future work): the
//! same three-program mix under CD's PI-driven first-fit allocation and
//! under the Working Set policy, sharing one memory.
//! Pass `--small` for the reduced test scale; see `--help` for the
//! full flag set.

fn main() {
    let env = cdmm_bench::BenchEnv::from_env();
    cdmm_bench::print_multiprog_grid(&env, &[48, 96, 192]);
    env.finish();
}
