//! Multiprogramming comparison (the paper's stated future work): the
//! same three-program mix under CD's PI-driven first-fit allocation and
//! under the Working Set policy, sharing one memory.
//! Pass `--small` for the reduced test scale.

fn main() {
    let scale = cdmm_bench::scale_from_args();
    for frames in [48, 96, 192] {
        cdmm_bench::print_multiprog(scale, frames);
    }
}
