//! Fleet-scheduler benchmark: drives seeded multi-tenant fleets through
//! the sharded work-stealing scheduler and writes the `BENCH_fleet.json`
//! artifact, comparing it against the checked-in baseline.
//!
//! ```text
//! fleet_bench [--small] [--threads N] [--quick] [--bench-out DIR]
//!             [--trace-out PATH] [--progress-out PATH] [--progress-tty]
//! ```
//!
//! Three operating points are measured: a mixed CD/WS/LRU fleet, an
//! all-CD fleet, and an all-WS fleet, each over the default workload
//! rotation. Every deterministic field (tenant count, cells, makespan,
//! faults, swap events, ST-cost and swapper-pressure percentiles, CPU
//! permille) is exact-compared against the baseline; `wall_ns`,
//! `tenants_per_sec`, and the `sched_*` scheduler counters are wall
//! fields, threshold-compared (or advisory under
//! `CDMM_WALL_ADVISORY=1`). `CDMM_BLESS=1` overwrites the baseline
//! instead of comparing.
//!
//! Every run goes through the observed scheduler, so the mixed fleet
//! also prints the [`FleetScorecard`] (worker timelines, phase spans,
//! hottest cells) to stderr; `--progress-out`/`--progress-tty` stream
//! live progress frames while the fleets run.
//!
//! Knobs: `CDMM_FLEET_TENANTS` / `CDMM_FLEET_SEED` / `CDMM_FLEET_SHARDS`
//! override the fleet shape for exploratory runs — any override skips
//! the baseline comparison, since the deterministic fields only match
//! at the blessed shape.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use cdmm_bench::artifact::{Artifact, Entry};
use cdmm_bench::regress::{compare, has_hard, RegressOptions};
use cdmm_bench::{BenchEnv, Options};
use cdmm_core::fleet::{fleet_frames_sweep, prepare_fleet, FleetSpec};
use cdmm_core::pipeline::PolicySpec;
use cdmm_core::report::render_fleet;
use cdmm_core::sweep::ResultCache;
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_vmsim::{
    CancelToken, FleetReport, FleetScorecard, NullTracer, ProgressExporter, SharedSink,
};
use cdmm_workloads::Scale;

fn baseline_dir() -> PathBuf {
    match std::env::var("CDMM_BASELINE_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines")),
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// The three policy rotations the artifact tracks.
fn mixes() -> Vec<(&'static str, Vec<PolicySpec>)> {
    let cd = PolicySpec::Cd {
        selector: CdSelector::FirstFit,
    };
    let ws = PolicySpec::Ws { tau: 2_000 };
    vec![
        ("mixed", vec![cd, ws, PolicySpec::Lru { frames: 16 }]),
        ("cd", vec![cd]),
        ("ws", vec![ws]),
    ]
}

/// One artifact row from one fleet run. The `sched_*` counters come
/// from the wall-side scorecard: they depend on thread timing and the
/// auto-shard choice, so [`cdmm_bench::artifact::is_wall_field`]
/// classifies them as tolerance-gated rather than exact.
fn entry(id: &str, r: &FleetReport, sc: &FleetScorecard, wall_ns: u64) -> Entry {
    let per_sec = r.tenants.len() as f64 / (wall_ns.max(1) as f64 / 1e9);
    Entry::new(id)
        .int("tenants", r.tenants.len() as u64)
        .int("cells", r.cells.len() as u64)
        .int("makespan", r.makespan)
        .int("refs", r.total_refs)
        .int("pf", r.total_faults)
        .int("swaps", r.swap_events)
        .int("cpu_pm", (r.cpu_utilization * 1000.0).round() as u64)
        .int("st_p50", r.st_cost.p50)
        .int("st_p99", r.st_cost.p99)
        .int("sw_p99", r.swap_pressure.p99)
        .int("wall_ns", wall_ns)
        .float("tenants_per_sec", per_sec)
        .int("sched_claims", sc.shard_claims)
        .int("sched_steals", sc.shard_steals)
}

fn run(env: &BenchEnv) -> Result<(), String> {
    let o = env.options();
    let overridden = env_u64("CDMM_FLEET_TENANTS").is_some()
        || env_u64("CDMM_FLEET_SEED").is_some()
        || env_u64("CDMM_FLEET_SHARDS").is_some();
    let tenants = env_u64("CDMM_FLEET_TENANTS").unwrap_or(if o.quick { 64 } else { 256 }) as usize;
    let seed = env_u64("CDMM_FLEET_SEED").unwrap_or(1);
    let shards = env_u64("CDMM_FLEET_SHARDS").unwrap_or(0) as usize;
    let threads = o.executor().threads();
    let scale_tag = match env.scale() {
        Scale::Paper => "paper",
        Scale::Small => "small",
    };

    let exporter = ProgressExporter::start(
        o.progress_out.as_deref(),
        o.progress_tty,
        Duration::from_millis(250),
    )
    .map_err(|e| format!("--progress-out: {e}"))?;
    let counters = exporter.counters();
    let token = CancelToken::new();

    let mut fresh = Artifact::new("fleet", scale_tag);
    for (name, mix) in mixes() {
        let spec = FleetSpec {
            tenants,
            seed,
            scale: env.scale(),
            policy_mix: mix,
            // Tight cells: four tenants on 24 frames keeps the swapper
            // and admission paths hot instead of benching an idle pool.
            frames_per_cell: 24,
            shards,
            threads,
            ..FleetSpec::default()
        };
        let prepared = prepare_fleet(&spec).map_err(|e| format!("fleet/{name}: {e}"))?;
        let t0 = Instant::now();
        let (report, scorecard) = match env.tracer() {
            Some(t) => {
                let mut sink = SharedSink::new(t);
                prepared.run_observed(&mut sink, Some(&counters), &token)
            }
            None => prepared.run_observed(&mut NullTracer, Some(&counters), &token),
        }
        .map_err(|e| format!("fleet/{name}: {e}"))?;
        let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        eprintln!(
            "fleet/{name}: {} tenants over {} cells in {:.1} ms — makespan {}, \
             {} faults, {} swap-outs, {} claims ({} stolen)",
            report.tenants.len(),
            report.cells.len(),
            wall_ns as f64 / 1e6,
            report.makespan,
            report.total_faults,
            report.swap_events,
            scorecard.shard_claims,
            scorecard.shard_steals,
        );
        if name == "mixed" {
            eprint!("{}", render_fleet(&report));
            eprint!("{}", scorecard.render());
        }
        fresh.entries.push(entry(
            &format!("fleet/{name}"),
            &report,
            &scorecard,
            wall_ns,
        ));
    }
    let frames = exporter.finish();
    if frames > 0 {
        eprintln!("fleet_bench: {frames} progress frames exported");
    }

    // Table-2-style frames-per-cell sweep: the same mixed fleet at
    // tighter and looser cells, with the per-tenant standalone best-LRU
    // ST column (answered by the one-pass curve kernel) as the
    // uniprogramming reference the consolidation overhead is read
    // against. Deterministic end to end, so every field is
    // exact-compared.
    let frames_grid = [16u64, 24, 48];
    let spec = FleetSpec {
        tenants,
        seed,
        scale: env.scale(),
        policy_mix: mixes().remove(0).1,
        shards,
        threads,
        ..FleetSpec::default()
    };
    let cache = ResultCache::in_memory();
    let t0 = Instant::now();
    let sweep = fleet_frames_sweep(&spec, &frames_grid, &cache)
        .map_err(|e| format!("fleet/frames: {e}"))?;
    eprintln!(
        "fleet/frames: {} cell sizes in {:.1} ms — standalone best-LRU ST {:.3e}",
        sweep.points.len(),
        t0.elapsed().as_nanos() as f64 / 1e6,
        sweep.standalone_lru_st,
    );
    for pt in &sweep.points {
        eprintln!(
            "fleet/frames/{}: makespan {}, {} faults, {} swap-outs, ST p99 {}",
            pt.frames_per_cell, pt.makespan, pt.total_faults, pt.swap_events, pt.st_p99,
        );
        fresh.entries.push(
            Entry::new(&format!("fleet/frames/{}", pt.frames_per_cell))
                .int("makespan", pt.makespan)
                .int("pf", pt.total_faults)
                .int("swaps", pt.swap_events)
                .int("cpu_pm", (pt.cpu_utilization * 1000.0).round() as u64)
                .int("st_p50", pt.st_p50)
                .int("st_p99", pt.st_p99)
                .float("standalone_st", sweep.standalone_lru_st),
        );
    }

    if let Some(dir) = &o.bench_out {
        let path = fresh
            .write_to_dir(dir)
            .map_err(|e| format!("--bench-out {}: {e}", dir.display()))?;
        eprintln!("fleet_bench: artifact written to {}", path.display());
    }

    let dir = baseline_dir();
    if env_flag("CDMM_BLESS") {
        let path = fresh
            .write_to_dir(&dir)
            .map_err(|e| format!("bless {}: {e}", dir.display()))?;
        eprintln!("fleet_bench: blessed {}", path.display());
        return Ok(());
    }
    if overridden {
        eprintln!("fleet_bench: fleet shape overridden via CDMM_FLEET_*; skipping baseline gate");
        return Ok(());
    }
    let baseline = Artifact::read_from_dir(&dir, "fleet")
        .map_err(|e| format!("{e} (run with CDMM_BLESS=1 to create the baseline)"))?;
    let opts = RegressOptions {
        advisory_wall: env_flag("CDMM_WALL_ADVISORY"),
        ..RegressOptions::default()
    };
    let findings = compare(&baseline, &fresh, &opts);
    for f in &findings {
        eprintln!("fleet_bench: {f}");
    }
    if has_hard(&findings) {
        return Err("deterministic fleet metrics drifted from the baseline".to_string());
    }
    eprintln!(
        "fleet_bench: baseline gate passed ({} findings)",
        findings.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let env = BenchEnv::new(Options::from_env());
    let result = run(&env);
    env.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fleet_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
