//! Batch-service throughput benchmark: drives `cdmm-serve`'s
//! [`BatchService`] with a deterministic request stream and writes the
//! `BENCH_serve.json` artifact.
//!
//! ```text
//! serve_bench [--small] [--threads N] [--cache-dir PATH]
//!             [--quick] [--bench-out DIR]
//! ```
//!
//! The stream covers every workload at the selected scale under a
//! spread of policies (CD, LRU, WS, FIFO, Clock, PFF), repeated across
//! several batches so the second and later rounds measure the warm
//! cache path. The artifact carries:
//!
//! - deterministic counts (`requests`, `ok`, `failed`), exact-compared
//!   by the perf-regression gate;
//! - wall-clock measurements (`total_wall_ns`, `p50_ns`, `p99_ns`,
//!   `requests_per_sec`), threshold-compared.

use std::process::ExitCode;
use std::time::Instant;

use cdmm_bench::artifact::{Artifact, Entry};
use cdmm_bench::{BenchEnv, Options};
use cdmm_serve::{BatchService, ServeConfig};
use cdmm_workloads::{all, Scale};

/// The policy spread each workload is simulated under.
const POLICY_ARGS: &[&str] = &[
    r#""policy":"cd""#,
    r#""policy":"cd-nolocks""#,
    r#""policy":"lru","frames":8"#,
    r#""policy":"ws","tau":500"#,
    r#""policy":"fifo","frames":8"#,
    r#""policy":"clock","frames":8"#,
    r#""policy":"pff","threshold":200"#,
];

/// Builds one batch of requests: every workload under every policy.
fn batch(scale: Scale, round: usize) -> Vec<String> {
    let scale_tag = match scale {
        Scale::Paper => "paper",
        Scale::Small => "small",
    };
    let mut lines = Vec::new();
    for w in all(scale) {
        for (pi, policy) in POLICY_ARGS.iter().enumerate() {
            lines.push(format!(
                r#"{{"id":"r{round}-{}-{pi}","workload":"{}","scale":"{scale_tag}",{policy}}}"#,
                w.name, w.name,
            ));
        }
    }
    lines
}

fn run(env: &BenchEnv) -> Result<(), String> {
    let o = env.options();
    let rounds = if o.quick { 2 } else { 4 };
    let service = BatchService::new(ServeConfig {
        threads: o.threads.unwrap_or(0),
        queue_depth: usize::MAX,
        cache_dir: o.cache_dir.clone(),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("cannot start service: {e}"))?;

    let t0 = Instant::now();
    for round in 0..rounds {
        let lines = batch(env.scale(), round);
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let out = service.handle_batch(&refs);
        for line in &out {
            if !line.contains("\"ok\":true") {
                return Err(format!("request failed: {line}"));
            }
        }
    }
    let total_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let st = service.stats();
    let cache = service.cache().stats();
    let per_sec = st.requests as f64 / (total_ns.max(1) as f64 / 1e9);
    eprintln!(
        "serve_bench: {} requests in {:.1} ms ({per_sec:.0} req/s), \
         p50 {} ns, p99 {} ns, {} cache hits / {} misses",
        st.requests,
        total_ns as f64 / 1e6,
        service.latency_ns(0.50),
        service.latency_ns(0.99),
        cache.cache_hits,
        cache.cache_misses,
    );

    if let Some(dir) = &o.bench_out {
        let scale_tag = match env.scale() {
            Scale::Paper => "paper",
            Scale::Small => "small",
        };
        let mut a = Artifact::new("serve", scale_tag);
        a.entries.push(
            Entry::new("serve/stream")
                .int("requests", st.requests)
                .int("ok", st.ok)
                .int("failed", st.failed)
                .int("total_wall_ns", total_ns)
                .int("p50_ns", service.latency_ns(0.50))
                .int("p99_ns", service.latency_ns(0.99))
                .float("requests_per_sec", per_sec),
        );
        let path = a
            .write_to_dir(dir)
            .map_err(|e| format!("write artifact: {e}"))?;
        eprintln!("serve_bench: artifact written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let env = BenchEnv::new(Options::from_env());
    let result = run(&env);
    env.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
