//! The perf-regression gate: diffs a fresh `BENCH_*.json` artifact
//! against a checked-in baseline with noise-aware thresholds.
//!
//! Two classes of field, told apart by name
//! ([`crate::artifact::is_wall_field`]):
//!
//! - **Wall-clock fields** (`*_ns`, `refs_per_sec`) are machine- and
//!   load-dependent, so they compare by ratio: a finding fires only
//!   past [`RegressOptions::wall_tolerance_pct`] (default 10%) in the
//!   slow direction. On shared CI runners
//!   [`RegressOptions::advisory_wall`] downgrades these findings to
//!   warnings that never fail the gate.
//! - **Everything else** (`faults`, `mean_mem`, `st`, table values) is
//!   a deterministic simulation output; *any* drift is a hard finding,
//!   because it means the simulator's behavior changed, not the
//!   machine.
//!
//! Missing entries, extra entries, missing fields, and kind/scale
//! mismatches are always hard findings. `CDMM_BLESS=1` (handled by the
//! `perf_regress` binary) re-baselines instead of comparing.

use std::fmt;

use crate::artifact::{is_wall_field, Artifact};

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Hard,
    /// Printed but never fails the gate (wall-time findings on shared
    /// runners).
    Advisory,
}

/// One difference between baseline and fresh artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Whether this finding fails the gate.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Hard => "FAIL",
            Severity::Advisory => "warn",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// Gate thresholds.
#[derive(Debug, Clone)]
pub struct RegressOptions {
    /// Allowed wall-clock slowdown in percent before a finding fires
    /// (default 10).
    pub wall_tolerance_pct: f64,
    /// Downgrade wall-clock findings to [`Severity::Advisory`].
    pub advisory_wall: bool,
}

impl Default for RegressOptions {
    fn default() -> Self {
        RegressOptions {
            wall_tolerance_pct: 10.0,
            advisory_wall: false,
        }
    }
}

/// True when any finding is hard — the gate's exit condition.
pub fn has_hard(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Hard)
}

/// Restricts a perf artifact to entries whose workload (the id segment
/// before `/`) is in `only`, case-insensitively. The gate applies this
/// to the *baseline* when `CDMM_PROFILE_WORKLOADS` reduces the fresh
/// set, so a bounded CI run is not failed for the workloads it never
/// profiled.
pub fn retain_workloads(artifact: &mut Artifact, only: &[String]) {
    artifact.entries.retain(|e| {
        let workload = e.id.split('/').next().unwrap_or("");
        only.iter().any(|n| n.eq_ignore_ascii_case(workload))
    });
}

/// Restricts an artifact to entries whose id contains `substr`. The
/// speedup-milestone gate applies this to *both* sides when
/// `CDMM_SPEEDUP_ROWS` narrows the milestone to one row family (e.g.
/// `sweep` for the one-pass kernel milestone), so the aggregate is not
/// diluted by rows the change never touched.
pub fn retain_rows(artifact: &mut Artifact, substr: &str) {
    artifact.entries.retain(|e| e.id.contains(substr));
}

/// Aggregate simulate throughput of a perf artifact: total references
/// over total simulate wall time across every entry, in refs/sec. The
/// trajectory speedup milestones compare this single number across
/// blessed baselines.
pub fn aggregate_refs_per_sec(a: &Artifact) -> f64 {
    let (mut refs, mut ns) = (0.0f64, 0.0f64);
    for e in &a.entries {
        refs += e.get("refs").map_or(0.0, |v| v.as_f64());
        ns += e.get("simulate_ns").map_or(0.0, |v| v.as_f64());
    }
    if ns <= 0.0 {
        0.0
    } else {
        refs / (ns / 1e9)
    }
}

/// Checks a trajectory speedup milestone: `fresh`'s aggregate simulate
/// throughput must be at least `min_speedup`× the archived `old`
/// artifact's. Returns no findings when the milestone is met. This is
/// a wall-clock comparison, so [`RegressOptions::advisory_wall`]
/// downgrades a miss to a warning — but a baseline with no usable wall
/// measurements is always hard (the comparison itself is broken).
pub fn check_speedup(
    old: &Artifact,
    fresh: &Artifact,
    min_speedup: f64,
    opts: &RegressOptions,
) -> Vec<Finding> {
    let before = aggregate_refs_per_sec(old);
    let after = aggregate_refs_per_sec(fresh);
    if before <= 0.0 {
        return vec![Finding {
            severity: Severity::Hard,
            message: "speedup baseline carries no simulate wall measurements".to_string(),
        }];
    }
    let ratio = after / before;
    if ratio < min_speedup {
        let severity = if opts.advisory_wall {
            Severity::Advisory
        } else {
            Severity::Hard
        };
        vec![Finding {
            severity,
            message: format!(
                "aggregate simulate throughput {after:.3e} refs/sec is only {ratio:.2}x \
                 the archived {before:.3e} (milestone: >={min_speedup}x)"
            ),
        }]
    } else {
        Vec::new()
    }
}

/// Diffs `fresh` against `baseline`, returning every finding (hard
/// first is NOT guaranteed; use [`has_hard`] for the verdict).
pub fn compare(baseline: &Artifact, fresh: &Artifact, opts: &RegressOptions) -> Vec<Finding> {
    let mut out = Vec::new();
    let hard = |message: String| Finding {
        severity: Severity::Hard,
        message,
    };
    if baseline.kind != fresh.kind {
        out.push(hard(format!(
            "artifact kind mismatch: baseline {:?} vs fresh {:?}",
            baseline.kind, fresh.kind
        )));
        return out;
    }
    if baseline.scale != fresh.scale {
        out.push(hard(format!(
            "scale mismatch: baseline {:?} vs fresh {:?} — regenerate baselines at the \
             comparison scale (CDMM_BLESS=1)",
            baseline.scale, fresh.scale
        )));
        return out;
    }
    let wall_severity = if opts.advisory_wall {
        Severity::Advisory
    } else {
        Severity::Hard
    };
    for b in &baseline.entries {
        let Some(f) = fresh.entries.iter().find(|e| e.id == b.id) else {
            out.push(hard(format!(
                "entry {:?} missing from fresh artifact",
                b.id
            )));
            continue;
        };
        for (name, bv) in &b.fields {
            let Some(fv) = f.get(name) else {
                out.push(hard(format!("{}: field {name:?} missing", b.id)));
                continue;
            };
            let (bv, fv) = (bv.as_f64(), fv.as_f64());
            if is_wall_field(name) {
                if bv <= 0.0 {
                    continue;
                }
                // Higher is better only for throughput; `_ns` phases
                // regress upward.
                let regression_pct = if name.ends_with("_per_sec") {
                    (bv - fv) / bv * 100.0
                } else {
                    (fv - bv) / bv * 100.0
                };
                if regression_pct > opts.wall_tolerance_pct {
                    out.push(Finding {
                        severity: wall_severity,
                        message: format!(
                            "{}: {name} regressed {regression_pct:.1}% \
                             (baseline {bv}, fresh {fv}, tolerance {}%)",
                            b.id, opts.wall_tolerance_pct
                        ),
                    });
                }
            } else if bv != fv {
                out.push(hard(format!(
                    "{}: {name} drifted from {bv} to {fv} — deterministic metrics must \
                     match the baseline exactly (CDMM_BLESS=1 to accept)",
                    b.id
                )));
            }
        }
    }
    for f in &fresh.entries {
        if !baseline.entries.iter().any(|b| b.id == f.id) {
            out.push(hard(format!(
                "entry {:?} not in baseline — bless to add it (CDMM_BLESS=1)",
                f.id
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Entry;

    fn base() -> Artifact {
        let mut a = Artifact::new("perf", "small");
        a.entries.push(
            Entry::new("MAIN/CD")
                .int("faults", 123)
                .float("mean_mem", 2.5)
                .int("simulate_ns", 1_000_000)
                .float("refs_per_sec", 1.0e8),
        );
        a
    }

    #[test]
    fn identical_artifacts_pass_clean() {
        let findings = compare(&base(), &base(), &RegressOptions::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn injected_20pct_throughput_regression_fails_the_gate() {
        let mut fresh = base();
        fresh.entries[0] = Entry::new("MAIN/CD")
            .int("faults", 123)
            .float("mean_mem", 2.5)
            .int("simulate_ns", 1_250_000)
            .float("refs_per_sec", 0.8e8); // 20% slower than baseline
        let findings = compare(&base(), &fresh, &RegressOptions::default());
        assert!(has_hard(&findings), "{findings:?}");
        assert!(
            findings.iter().any(|f| f.message.contains("refs_per_sec")),
            "{findings:?}"
        );
        // Same regression inside the 10% window passes.
        let mut ok = base();
        ok.entries[0] = Entry::new("MAIN/CD")
            .int("faults", 123)
            .float("mean_mem", 2.5)
            .int("simulate_ns", 1_050_000)
            .float("refs_per_sec", 0.95e8);
        assert!(compare(&base(), &ok, &RegressOptions::default()).is_empty());
    }

    #[test]
    fn wall_speedups_never_fire() {
        let mut fresh = base();
        fresh.entries[0] = Entry::new("MAIN/CD")
            .int("faults", 123)
            .float("mean_mem", 2.5)
            .int("simulate_ns", 100)
            .float("refs_per_sec", 9.0e9);
        assert!(compare(&base(), &fresh, &RegressOptions::default()).is_empty());
    }

    #[test]
    fn advisory_mode_downgrades_wall_but_not_fault_drift() {
        let opts = RegressOptions {
            advisory_wall: true,
            ..RegressOptions::default()
        };
        let mut fresh = base();
        fresh.entries[0] = Entry::new("MAIN/CD")
            .int("faults", 124) // drift
            .float("mean_mem", 2.5)
            .int("simulate_ns", 9_000_000) // 9x slower
            .float("refs_per_sec", 1.0e8);
        let findings = compare(&base(), &fresh, &opts);
        assert_eq!(findings.len(), 2, "{findings:?}");
        let wall = findings
            .iter()
            .find(|f| f.message.contains("simulate_ns"))
            .expect("wall finding");
        assert_eq!(wall.severity, Severity::Advisory);
        let drift = findings
            .iter()
            .find(|f| f.message.contains("faults"))
            .expect("drift finding");
        assert_eq!(drift.severity, Severity::Hard);
        assert!(has_hard(&findings));
        assert!(drift.to_string().starts_with("FAIL:"));
        assert!(wall.to_string().starts_with("warn:"));
    }

    #[test]
    fn any_fault_metric_drift_is_hard_even_when_tiny() {
        let mut fresh = base();
        fresh.entries[0] = Entry::new("MAIN/CD")
            .int("faults", 123)
            .float("mean_mem", 2.5000001)
            .int("simulate_ns", 1_000_000)
            .float("refs_per_sec", 1.0e8);
        let findings = compare(&base(), &fresh, &RegressOptions::default());
        assert!(has_hard(&findings), "{findings:?}");
    }

    #[test]
    fn structural_differences_are_hard() {
        let empty_fresh = Artifact::new("perf", "small");
        assert!(has_hard(&compare(
            &base(),
            &empty_fresh,
            &RegressOptions::default()
        )));
        let extra = {
            let mut a = base();
            a.entries.push(Entry::new("NEW/CD").int("faults", 1));
            a
        };
        let findings = compare(&base(), &extra, &RegressOptions::default());
        assert!(findings.iter().any(|f| f.message.contains("NEW/CD")));
        let missing_field = {
            let mut a = base();
            a.entries[0] = Entry::new("MAIN/CD").int("faults", 123);
            a
        };
        assert!(has_hard(&compare(
            &base(),
            &missing_field,
            &RegressOptions::default()
        )));
    }

    #[test]
    fn retain_workloads_subsets_the_baseline_for_reduced_runs() {
        let mut baseline = base();
        baseline
            .entries
            .push(Entry::new("HYBRJ/CD").int("faults", 7));
        retain_workloads(&mut baseline, &["main".to_string()]);
        assert_eq!(baseline.entries.len(), 1);
        assert_eq!(baseline.entries[0].id, "MAIN/CD");
        // The subset baseline now matches a reduced fresh run cleanly.
        assert!(compare(&baseline, &base(), &RegressOptions::default()).is_empty());
    }

    #[test]
    fn retain_rows_narrows_a_speedup_milestone_to_one_family() {
        let mut a = base();
        a.entries.push(
            Entry::new("MAIN/sweep/lru")
                .int("refs", 500)
                .int("simulate_ns", 10),
        );
        a.entries.push(
            Entry::new("FIELD/sweep/ws")
                .int("refs", 300)
                .int("simulate_ns", 10),
        );
        retain_rows(&mut a, "/sweep/");
        let ids: Vec<&str> = a.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, vec!["MAIN/sweep/lru", "FIELD/sweep/ws"]);
    }

    #[test]
    fn speedup_milestone_gates_on_aggregate_throughput() {
        let mk = |refs: u64, ns: u64| {
            let mut a = Artifact::new("perf", "small");
            a.entries.push(
                Entry::new("MAIN/CD")
                    .int("refs", refs)
                    .int("simulate_ns", ns),
            );
            a
        };
        let before = mk(1_000_000, 1_000_000); // 1e9 refs/sec
        assert!((aggregate_refs_per_sec(&before) - 1e9).abs() < 1e-3);
        let after = mk(1_000_000, 200_000); // 5e9 refs/sec, exactly 5x
        assert!(check_speedup(&before, &after, 5.0, &RegressOptions::default()).is_empty());
        let slow = mk(1_000_000, 500_000); // only 2x
        let findings = check_speedup(&before, &slow, 5.0, &RegressOptions::default());
        assert!(has_hard(&findings), "{findings:?}");
        let advisory = RegressOptions {
            advisory_wall: true,
            ..RegressOptions::default()
        };
        let findings = check_speedup(&before, &slow, 5.0, &advisory);
        assert_eq!(findings.len(), 1);
        assert!(!has_hard(&findings), "advisory mode never fails the gate");
        // A broken baseline is hard even in advisory mode.
        let empty = Artifact::new("perf", "small");
        assert!(has_hard(&check_speedup(&empty, &after, 5.0, &advisory)));
    }

    #[test]
    fn scale_mismatch_is_explained() {
        let paper = Artifact::new("perf", "paper");
        let findings = compare(&base(), &paper, &RegressOptions::default());
        assert!(has_hard(&findings));
        assert!(findings[0].message.contains("CDMM_BLESS"), "{findings:?}");
    }
}
