//! Criterion benches: raw policy throughput on synthetic reference
//! strings (references per second through each policy implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cdmm_trace::synth;
use cdmm_vmsim::policy::cd::{CdPolicy, CdSelector};
use cdmm_vmsim::policy::fifo::Fifo;
use cdmm_vmsim::policy::lru::Lru;
use cdmm_vmsim::policy::opt::Opt;
use cdmm_vmsim::policy::pff::Pff;
use cdmm_vmsim::policy::ws::WorkingSet;
use cdmm_vmsim::policy::Policy;
use cdmm_vmsim::{simulate, SimConfig};

const LEN: usize = 50_000;
const PAGES: u32 = 128;

fn bench_policies(c: &mut Criterion) {
    let trace = synth::uniform(PAGES, LEN, 42);
    let mut g = c.benchmark_group("policy_throughput");
    g.throughput(Throughput::Elements(LEN as u64));

    g.bench_function(BenchmarkId::new("lru", 64), |b| {
        b.iter(|| {
            let mut p = Lru::new(64);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function(BenchmarkId::new("fifo", 64), |b| {
        b.iter(|| {
            let mut p = Fifo::new(64);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function(BenchmarkId::new("ws", 1000), |b| {
        b.iter(|| {
            let mut p = WorkingSet::new(1_000);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function(BenchmarkId::new("pff", 200), |b| {
        b.iter(|| {
            let mut p = Pff::new(200);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function(BenchmarkId::new("opt", 64), |b| {
        b.iter(|| {
            let mut p = Opt::for_trace(&trace, 64);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function(BenchmarkId::new("cd", 64), |b| {
        b.iter(|| {
            let mut p = CdPolicy::new(CdSelector::Outermost).with_min_alloc(64);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.finish();

    // The stack-distance pass that replaces V separate LRU runs.
    let mut g = c.benchmark_group("stack_profile");
    g.throughput(Throughput::Elements(LEN as u64));
    g.bench_function("compute", |b| {
        b.iter(|| black_box(cdmm_vmsim::stack::StackProfile::compute(&trace)))
    });
    g.finish();
}

fn bench_policy_zoo_cost(c: &mut Criterion) {
    // A locality-heavy trace stresses the eviction paths.
    let trace = synth::nested_loops(50, 8, 32, 10);
    let mut g = c.benchmark_group("nested_loop_trace");
    g.throughput(Throughput::Elements(trace.ref_count()));
    g.bench_function("lru_16", |b| {
        b.iter(|| {
            let mut p = Lru::new(16);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function("ws_500", |b| {
        b.iter(|| {
            let mut p = WorkingSet::new(500);
            let m = simulate(&trace, &mut p, SimConfig::default());
            black_box((m, p.resident()))
        })
    });
    g.finish();
}

criterion_group!(policies, bench_policies, bench_policy_zoo_cost);
criterion_main!(policies);
