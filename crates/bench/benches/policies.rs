//! Raw policy throughput on synthetic reference strings (references per
//! second through each policy implementation).

use cdmm_bench::timing::run;
use cdmm_trace::synth;
use cdmm_vmsim::policy::cd::{CdPolicy, CdSelector};
use cdmm_vmsim::policy::fifo::Fifo;
use cdmm_vmsim::policy::lru::Lru;
use cdmm_vmsim::policy::opt::Opt;
use cdmm_vmsim::policy::pff::Pff;
use cdmm_vmsim::policy::ws::WorkingSet;
use cdmm_vmsim::policy::Policy;
use cdmm_vmsim::{simulate, SimConfig};

const LEN: usize = 50_000;
const PAGES: u32 = 128;
const SAMPLES: u32 = 20;

fn main() {
    let trace = synth::uniform(PAGES, LEN, 42);
    println!("policy_throughput ({LEN} refs over {PAGES} pages)");

    run("lru/64", SAMPLES, || {
        let mut p = Lru::new(64);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("fifo/64", SAMPLES, || {
        let mut p = Fifo::new(64);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("ws/1000", SAMPLES, || {
        let mut p = WorkingSet::new(1_000);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("pff/200", SAMPLES, || {
        let mut p = Pff::new(200);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("opt/64", SAMPLES, || {
        let mut p = Opt::for_trace(&trace, 64);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("cd/64", SAMPLES, || {
        let mut p = CdPolicy::new(CdSelector::Outermost).with_min_alloc(64);
        simulate(&trace, &mut p, SimConfig::default())
    });

    // The stack-distance pass that replaces V separate LRU runs.
    run("stack_profile/compute", SAMPLES, || {
        cdmm_vmsim::stack::StackProfile::compute(&trace)
    });

    // A locality-heavy trace stresses the eviction paths.
    let nested = synth::nested_loops(50, 8, 32, 10);
    println!("nested_loop_trace ({} refs)", nested.ref_count());
    run("lru_16", SAMPLES, || {
        let mut p = Lru::new(16);
        simulate(&nested, &mut p, SimConfig::default())
    });
    run("ws_500", SAMPLES, || {
        let mut p = WorkingSet::new(500);
        let m = simulate(&nested, &mut p, SimConfig::default());
        (m, p.resident())
    });
}
