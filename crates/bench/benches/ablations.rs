//! Ablation-study benches: LOCK handling, the WS policy family on the
//! same trace, and the multiprogramming driver.

use cdmm_bench::timing::run;
use cdmm_core::experiments::Harness;
use cdmm_core::selector_for;
use cdmm_trace::{synth, CompressedTrace};
use cdmm_vmsim::policy::cd::{CdPolicy, CdSelector};
use cdmm_vmsim::policy::pff::Pff;
use cdmm_vmsim::policy::ws::WorkingSet;
use cdmm_vmsim::policy::ws_variants::{DampedWs, SampledWs, VariableSampledWs};
use cdmm_vmsim::{run_fleet, Admission, FleetConfig, TenantSpec};
use cdmm_vmsim::{simulate, SimConfig};
use cdmm_workloads::Scale;

const SAMPLES: u32 = 10;

fn main() {
    let mut h = Harness::new(Scale::Small);
    let (_, variant) = h.resolve("MAIN");
    let selector = selector_for(variant.level);
    // Prepare once, outside the timed loop.
    let _ = h.prepared("MAIN");
    run("ablation_cd_locks_main", SAMPLES, || {
        let p = h.prepared("MAIN");
        (p.run_cd(selector), p.run_cd_no_locks(selector))
    });

    // Phased trace: the workload class the WS variants were invented for.
    let phases: Vec<synth::Phase> = (0..8)
        .map(|i| synth::Phase {
            base: if i % 2 == 0 { 0 } else { 16 },
            pages: 12,
            refs: 2_000,
        })
        .collect();
    let trace = synth::phased(&phases, 5);
    println!("ws_family ({} refs)", trace.ref_count());
    run("ws", SAMPLES, || {
        let mut p = WorkingSet::new(300);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("dws", SAMPLES, || {
        let mut p = DampedWs::new(300, 16);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("sws", SAMPLES, || {
        let mut p = SampledWs::new(300, 50);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("vsws", SAMPLES, || {
        let mut p = VariableSampledWs::new(50, 600, 10);
        simulate(&trace, &mut p, SimConfig::default())
    });
    run("pff", SAMPLES, || {
        let mut p = Pff::new(150);
        simulate(&trace, &mut p, SimConfig::default())
    });

    run("multiprog_three_ws_processes", SAMPLES, || {
        let cyclic = CompressedTrace::from_trace(&synth::cyclic(12, 40));
        let tenant = |name: &str, cd: bool| TenantSpec {
            name: name.to_string(),
            trace: cyclic.clone(),
            engine: if cd {
                Box::new(CdPolicy::new(CdSelector::FirstFit).with_min_alloc(2))
            } else {
                Box::new(WorkingSet::new(2_000))
            },
            arrival: 0,
        };
        let tenants = vec![tenant("a", false), tenant("b", false), tenant("c", true)];
        run_fleet(
            tenants,
            FleetConfig {
                frames_per_cell: 30,
                tenants_per_cell: 3,
                admission: Admission::Free,
                ..Default::default()
            },
        )
    })
}
