//! Criterion benches for the ablation studies: LOCK handling, the WS
//! policy family on the same trace, and the multiprogramming driver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdmm_core::experiments::Harness;
use cdmm_core::selector_for;
use cdmm_trace::synth;
use cdmm_vmsim::multiprog::{run_multiprogram, MultiConfig, ProcPolicy};
use cdmm_vmsim::policy::pff::Pff;
use cdmm_vmsim::policy::ws::WorkingSet;
use cdmm_vmsim::policy::ws_variants::{DampedWs, SampledWs, VariableSampledWs};
use cdmm_vmsim::{simulate, SimConfig};
use cdmm_workloads::Scale;

fn bench_lock_ablation(c: &mut Criterion) {
    c.bench_function("ablation_cd_locks_main", |b| {
        let mut h = Harness::new(Scale::Small);
        let (_, variant) = h.resolve("MAIN");
        let selector = selector_for(variant.level);
        // Prepare once, outside the timed loop.
        let _ = h.prepared("MAIN");
        b.iter(|| {
            let p = h.prepared("MAIN");
            black_box((p.run_cd(selector), p.run_cd_no_locks(selector)))
        })
    });
}

fn bench_ws_family(c: &mut Criterion) {
    // Phased trace: the workload class the WS variants were invented for.
    let phases: Vec<synth::Phase> = (0..8)
        .map(|i| synth::Phase {
            base: if i % 2 == 0 { 0 } else { 16 },
            pages: 12,
            refs: 2_000,
        })
        .collect();
    let trace = synth::phased(&phases, 5);
    let mut g = c.benchmark_group("ws_family");
    g.bench_function("ws", |b| {
        b.iter(|| {
            let mut p = WorkingSet::new(300);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function("dws", |b| {
        b.iter(|| {
            let mut p = DampedWs::new(300, 16);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function("sws", |b| {
        b.iter(|| {
            let mut p = SampledWs::new(300, 50);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function("vsws", |b| {
        b.iter(|| {
            let mut p = VariableSampledWs::new(50, 600, 10);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.bench_function("pff", |b| {
        b.iter(|| {
            let mut p = Pff::new(150);
            black_box(simulate(&trace, &mut p, SimConfig::default()))
        })
    });
    g.finish();
}

fn bench_multiprog(c: &mut Criterion) {
    c.bench_function("multiprog_three_ws_processes", |b| {
        b.iter(|| {
            let specs = vec![
                (
                    "a".to_string(),
                    synth::cyclic(12, 40),
                    ProcPolicy::Ws { tau: 2_000 },
                ),
                (
                    "b".to_string(),
                    synth::cyclic(12, 40),
                    ProcPolicy::Ws { tau: 2_000 },
                ),
                (
                    "c".to_string(),
                    synth::cyclic(12, 40),
                    ProcPolicy::Cd { min_alloc: 2 },
                ),
            ];
            black_box(run_multiprogram(
                specs,
                MultiConfig {
                    total_frames: 30,
                    ..Default::default()
                },
            ))
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_lock_ablation, bench_ws_family, bench_multiprog
}
criterion_main!(ablations);
