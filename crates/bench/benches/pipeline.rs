//! Front-end and trace-generation stages of the CD pipeline (compile,
//! analyse, instrument, interpret).

use cdmm_bench::timing::run;
use cdmm_core::{prepare, PipelineConfig};
use cdmm_locality::{analyze_program, instrument, InsertOptions, PageGeometry};
use cdmm_workloads::{by_name, Scale};

const SAMPLES: u32 = 20;

fn main() {
    let w = by_name("CONDUCT", Scale::Small).expect("known workload");
    run("parse_and_check", SAMPLES, || {
        let mut p = cdmm_lang::parse(&w.source).expect("parses");
        cdmm_lang::analyze(&mut p).expect("checks")
    });
    run("locality_analysis", SAMPLES, || {
        analyze_program(&w.source, PageGeometry::PAPER).expect("analyses")
    });
    let analysis = analyze_program(&w.source, PageGeometry::PAPER).expect("analyses");
    run("directive_insertion", SAMPLES, || {
        instrument(&analysis, InsertOptions::default())
    });

    let field = by_name("FIELD", Scale::Small).expect("known workload");
    run("trace_generation_field_small", SAMPLES, || {
        cdmm_trace::trace_program(&field.source, PageGeometry::PAPER).expect("traces")
    });

    let main = by_name("MAIN", Scale::Small).expect("known workload");
    run("prepare_main_small", SAMPLES, || {
        prepare("MAIN", &main.source, PipelineConfig::default()).expect("prepares")
    });
}
