//! Criterion benches: front-end and trace-generation stages of the CD
//! pipeline (compile, analyse, instrument, interpret).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdmm_core::{prepare, PipelineConfig};
use cdmm_locality::{analyze_program, instrument, InsertOptions, PageGeometry};
use cdmm_workloads::{by_name, Scale};

fn bench_front_end(c: &mut Criterion) {
    let w = by_name("CONDUCT", Scale::Small).unwrap();
    c.bench_function("parse_and_check", |b| {
        b.iter(|| {
            let mut p = cdmm_lang::parse(black_box(&w.source)).unwrap();
            black_box(cdmm_lang::analyze(&mut p).unwrap())
        })
    });
    c.bench_function("locality_analysis", |b| {
        b.iter(|| black_box(analyze_program(&w.source, PageGeometry::PAPER).unwrap()))
    });
    let analysis = analyze_program(&w.source, PageGeometry::PAPER).unwrap();
    c.bench_function("directive_insertion", |b| {
        b.iter(|| black_box(instrument(&analysis, InsertOptions::default())))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let w = by_name("FIELD", Scale::Small).unwrap();
    c.bench_function("trace_generation_field_small", |b| {
        b.iter(|| black_box(cdmm_trace::trace_program(&w.source, PageGeometry::PAPER).unwrap()))
    });
}

fn bench_full_prepare(c: &mut Criterion) {
    let w = by_name("MAIN", Scale::Small).unwrap();
    c.bench_function("prepare_main_small", |b| {
        b.iter(|| black_box(prepare("MAIN", &w.source, PipelineConfig::default()).unwrap()))
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(20);
    targets = bench_front_end, bench_trace_generation, bench_full_prepare
}
criterion_main!(pipeline);
