//! Regenerating each of the paper's tables.
//!
//! One bench per table/figure artifact, as DESIGN.md's experiment index
//! requires. These run at `Scale::Small` so the repeated sampling stays
//! fast; the `--bin tableN` binaries produce the paper-scale rows.

use cdmm_bench::timing::run;
use cdmm_core::experiments::{table1, table2, table3, table4, Harness};
use cdmm_workloads::Scale;

const SAMPLES: u32 = 10;

fn main() {
    run("table1_cd_directive_sets", SAMPLES, || {
        let mut h = Harness::new(Scale::Small);
        table1(&mut h)
    });
    run("table2_min_st_comparison", SAMPLES, || {
        let mut h = Harness::new(Scale::Small);
        table2(&mut h)
    });
    run("table3_equal_memory_comparison", SAMPLES, || {
        let mut h = Harness::new(Scale::Small);
        table3(&mut h)
    });
    run("table4_equal_faults_comparison", SAMPLES, || {
        let mut h = Harness::new(Scale::Small);
        table4(&mut h)
    });
}
