//! Criterion benches: regenerating each of the paper's tables.
//!
//! One bench per table/figure artifact, as DESIGN.md's experiment index
//! requires. These run at `Scale::Small` so criterion's repeated sampling
//! stays fast; the `--bin tableN` binaries produce the paper-scale rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdmm_core::experiments::{table1, table2, table3, table4, Harness};
use cdmm_workloads::Scale;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_cd_directive_sets", |b| {
        b.iter(|| {
            let mut h = Harness::new(Scale::Small);
            black_box(table1(&mut h))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_min_st_comparison", |b| {
        b.iter(|| {
            let mut h = Harness::new(Scale::Small);
            black_box(table2(&mut h))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_equal_memory_comparison", |b| {
        b.iter(|| {
            let mut h = Harness::new(Scale::Small);
            black_box(table3(&mut h))
        })
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_equal_faults_comparison", |b| {
        b.iter(|| {
            let mut h = Harness::new(Scale::Small);
            black_box(table4(&mut h))
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4
}
criterion_main!(tables);
