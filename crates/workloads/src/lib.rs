//! The nine numerical FORTRAN programs of the paper's evaluation
//! (Section 5), reconstructed in the mini-FORTRAN language.
//!
//! The authors traced programs from UIARL, MINPACK, EISPACK and FISHPACK:
//! `MAIN`, `FDJAC`, `TQL`, `FIELD`, `INIT`, `APPROX`, `HYBRJ`, `CONDUCT`
//! and `HWSCRT`. The sources were never published; each module here
//! re-implements the *published algorithm* the program came from (e.g.
//! MINPACK's forward-difference Jacobian for `FDJAC`) with array sizes
//! chosen so the virtual-space footprints match where the paper reports
//! them (`CONDUCT` ≈ 270 pages, `HWSCRT` ≈ 69 pages at 256-byte pages).
//! What the memory policies see — loop structure, reference order,
//! footprint — is therefore faithful to the originals.
//!
//! Every workload is parameterized by a [`Scale`]: [`Scale::Paper`] for
//! the experiment harness and [`Scale::Small`] for fast unit tests.
//!
//! # Examples
//!
//! ```
//! use cdmm_workloads::{all, Scale};
//!
//! let programs = all(Scale::Small);
//! assert_eq!(programs.len(), 9);
//! for w in &programs {
//!     cdmm_lang::parse(&w.source).expect("every workload parses");
//! }
//! ```

pub mod programs;

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Full-size runs for the experiment harness (traces of 10⁵–10⁶
    /// references, footprints comparable to the paper's).
    Paper,
    /// Reduced sizes for unit and integration tests.
    Small,
}

/// How a Table-1 variant selects among each `ALLOCATE`'s requests —
/// a policy-neutral mirror of the CD selector (the paper's "different
/// sets of directives").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectiveLevel {
    /// Honor the outermost (largest) request.
    Outermost,
    /// Honor the innermost (smallest) request.
    Innermost,
    /// Honor the request at or just below this priority index.
    AtLevel(u32),
}

/// One directive-set variant of a workload (the paper's `MAIN1`,
/// `FDJAC1`, `TQL2`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Variant name as printed in the paper's tables.
    pub name: &'static str,
    /// Which request each `ALLOCATE` honors.
    pub level: DirectiveLevel,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Program name as printed in the paper's tables.
    pub name: &'static str,
    /// Origin and what the program computes.
    pub description: &'static str,
    /// Mini-FORTRAN source text.
    pub source: String,
    /// Directive-set variants; the first is the default one used when a
    /// table row just says the program's name.
    pub variants: Vec<Variant>,
}

impl Workload {
    /// Looks up a variant by table-row name (`"MAIN3"`); the bare program
    /// name maps to the first variant.
    pub fn variant(&self, name: &str) -> Option<Variant> {
        if name == self.name {
            return self.variants.first().copied();
        }
        self.variants.iter().find(|v| v.name == name).copied()
    }
}

/// All nine workloads at the given scale, in the paper's table order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        programs::main_::workload(scale),
        programs::fdjac::workload(scale),
        programs::tql::workload(scale),
        programs::field::workload(scale),
        programs::init::workload(scale),
        programs::approx::workload(scale),
        programs::hybrj::workload(scale),
        programs::conduct::workload(scale),
        programs::hwscrt::workload(scale),
    ]
}

/// Looks a workload up by name (case-insensitive).
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    let upper = name.to_ascii_uppercase();
    all(scale).into_iter().find(|w| w.name == upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_parse_and_check() {
        for scale in [Scale::Small, Scale::Paper] {
            for w in all(scale) {
                let mut p = cdmm_lang::parse(&w.source)
                    .unwrap_or_else(|e| panic!("{} ({scale:?}): {e}", w.name));
                cdmm_lang::analyze(&mut p)
                    .unwrap_or_else(|e| panic!("{} ({scale:?}): {e}", w.name));
            }
        }
    }

    #[test]
    fn names_match_paper_tables() {
        let names: Vec<&str> = all(Scale::Small).iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX", "HYBRJ", "CONDUCT", "HWSCRT"]
        );
    }

    #[test]
    fn variant_lookup() {
        let main = by_name("main", Scale::Small).unwrap();
        assert!(main.variant("MAIN1").is_some());
        assert!(
            main.variant("MAIN").is_some(),
            "bare name = default variant"
        );
        assert!(main.variant("MAIN9").is_none());
        assert!(by_name("nosuch", Scale::Small).is_none());
    }

    #[test]
    fn every_workload_has_loops_to_direct() {
        use cdmm_locality::{analyze_program, PageGeometry};
        for w in all(Scale::Small) {
            let a = analyze_program(&w.source, PageGeometry::PAPER)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                a.tree.max_depth() >= 2,
                "{} needs nested loops for the CD policy to matter",
                w.name
            );
        }
    }
}
