//! `HWSCRT` — FISHPACK's Helmholtz solver on a rectangle; the dominant
//! access pattern is line relaxation: a tridiagonal (Thomas) solve along
//! each grid column using small forward/backward recurrence vectors.
//! Sized so the grid is 69 pages, the figure the paper quotes.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nit: u32) -> String {
    format!(
        "\
PROGRAM HWSCRT
PARAMETER (N = {n}, NIT = {nit})
DIMENSION F(N,N), P(N), Q(N)
C Initial guess and boundary data.
DO 5 J = 1, N
  DO 6 I = 1, N
    F(I,J) = 0.01 * FLOAT(I) + 0.02 * FLOAT(J)
6 CONTINUE
5 CONTINUE
DO 10 IT = 1, NIT
  DO 20 J = 2, N - 1
C   Forward elimination along column J.
    P(1) = 0.0
    Q(1) = 0.0
    DO 30 I = 2, N - 1
      DEN = 4.0 + P(I-1)
      P(I) = -1.0 / DEN
      Q(I) = (F(I,J-1) + F(I,J+1) + Q(I-1)) / DEN
30  CONTINUE
C   Back substitution.
    DO 40 I = N - 1, 2, -1
      F(I,J) = P(I) * F(I+1,J) + Q(I)
40  CONTINUE
20 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `HWSCRT` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(66, 8),
        Scale::Small => source(12, 2),
    };
    Workload {
        name: "HWSCRT",
        description: "FISHPACK-style Helmholtz solver: per-column \
                      tridiagonal line relaxation over a 66x66 grid \
                      (69-page grid, as the paper quotes)",
        source,
        variants: vec![
            Variant {
                name: "HWSCRT",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "HWSCRT-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "HWSCRT-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 500);
    }

    #[test]
    fn grid_is_69_pages() {
        // 66x66 = 4356 elements = 69 pages (paper: "HWSCRT has 69 pages
        // in its virtual space"); the two 66-element recurrence vectors
        // add 2 pages each.
        assert_eq!(testutil::paper_pages(workload), 69 + 4);
    }
}
