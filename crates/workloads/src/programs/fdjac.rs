//! `FDJAC` — MINPACK's forward-difference Jacobian approximation
//! (`fdjac1`) applied to the Broyden tridiagonal test function: for each
//! column `j`, perturb `x(j)`, re-evaluate the residual vector, and write
//! column `j` of the Jacobian.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32) -> String {
    format!(
        "\
PROGRAM FDJAC
PARAMETER (N = {n})
DIMENSION X(N), FVEC(N), WA(N), FJAC(N,N)
DO 5 I = 1, N
  X(I) = -1.0
5 CONTINUE
C Residuals of the Broyden tridiagonal function at the base point.
DO 10 I = 1, N
  XM = 0.0
  IF (I .GT. 1) XM = X(I-1)
  XP = 0.0
  IF (I .LT. N) XP = X(I+1)
  FVEC(I) = (3.0 - 2.0 * X(I)) * X(I) - XM - 2.0 * XP + 1.0
10 CONTINUE
C Forward differences, one Jacobian column per perturbed variable.
DO 20 J = 1, N
  TEMP = X(J)
  H = 0.0001 * ABS(TEMP)
  IF (H .EQ. 0.0) H = 0.0001
  X(J) = TEMP + H
  DO 30 I = 1, N
    XM = 0.0
    IF (I .GT. 1) XM = X(I-1)
    XP = 0.0
    IF (I .LT. N) XP = X(I+1)
    WA(I) = (3.0 - 2.0 * X(I)) * X(I) - XM - 2.0 * XP + 1.0
30 CONTINUE
  X(J) = TEMP
  DO 40 I = 1, N
    FJAC(I,J) = (WA(I) - FVEC(I)) / H
40 CONTINUE
20 CONTINUE
END
"
    )
}

/// Builds the `FDJAC` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(64),
        Scale::Small => source(12),
    };
    Workload {
        name: "FDJAC",
        description: "MINPACK fdjac1: forward-difference Jacobian of the \
                      Broyden tridiagonal function, one column sweep per \
                      variable",
        source,
        variants: vec![
            Variant {
                name: "FDJAC",
                level: DirectiveLevel::Innermost,
            },
            Variant {
                name: "FDJAC1",
                level: DirectiveLevel::Outermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 500);
    }

    #[test]
    fn jacobian_dominates_the_footprint() {
        let pages = testutil::paper_pages(workload);
        // FJAC is 64x64 = 64 pages; three vectors add one page each.
        assert_eq!(pages, 64 + 3);
    }
}
