//! `HYBRJ` — MINPACK's Powell hybrid method with analytic Jacobian; the
//! memory-relevant phase is `qrfac`: Householder QR of the Jacobian by
//! columns (column norms, scaling, trailing-column updates), followed by
//! the triangular backsolve that walks `R` row-wise.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nit: u32, nev: u32) -> String {
    format!(
        "\
PROGRAM HYBRJ
PARAMETER (N = {n}, NIT = {nit}, NEV = {nev})
DIMENSION FJAC(N,N), RDIAG(N), WA(N), QTF(N), X(N), FVEC(N)
DO 2 I = 1, N
  X(I) = -1.0
2 CONTINUE
C Hybrid (Powell dogleg) iterations: many cheap residual evaluations
C around one Jacobian factorization per iteration.
DO 100 IT = 1, NIT
C Line-search / trial-point residual evaluations (vector-local).
  DO 110 E = 1, NEV
    DO 120 I = 1, N
      XM = 0.0
      IF (I .GT. 1) XM = X(I-1)
      XP = 0.0
      IF (I .LT. N) XP = X(I+1)
      FVEC(I) = (3.0 - 2.0 * X(I)) * X(I) - XM - 2.0 * XP + 1.0
120 CONTINUE
    DO 130 I = 1, N
      X(I) = X(I) - 0.001 * FVEC(I)
130 CONTINUE
110 CONTINUE
C Analytic Jacobian of the Broyden tridiagonal function (banded).
  DO 5 J = 1, N
    DO 6 I = 1, N
      FJAC(I,J) = 0.0
6   CONTINUE
5 CONTINUE
  DO 8 J = 1, N
    FJAC(J,J) = 3.0 - 4.0 * X(J)
    IF (J .GT. 1) FJAC(J-1,J) = -2.0
    IF (J .LT. N) FJAC(J+1,J) = -1.0
8 CONTINUE
C Householder QR factorization, MINPACK qrfac shape.
  DO 10 J = 1, N
    S = 0.0
    DO 20 I = J, N
      S = S + FJAC(I,J) * FJAC(I,J)
20  CONTINUE
    RDIAG(J) = SQRT(S) + 0.0001
    DO 30 I = J, N
      FJAC(I,J) = FJAC(I,J) / RDIAG(J)
30  CONTINUE
    DO 40 L = J + 1, N
      S = 0.0
      DO 50 I = J, N
        S = S + FJAC(I,J) * FJAC(I,L)
50    CONTINUE
      DO 60 I = J, N
        FJAC(I,L) = FJAC(I,L) - S * FJAC(I,J)
60    CONTINUE
40  CONTINUE
10 CONTINUE
C Backsolve R x = q for the hybrid step (row-wise walk of FJAC).
  DO 70 I = 1, N
    QTF(I) = FVEC(I)
    WA(I) = 0.0
70 CONTINUE
  DO 80 J = N, 1, -1
    S = QTF(J)
    DO 90 L = J + 1, N
      S = S - FJAC(J,L) * WA(L)
90  CONTINUE
    WA(J) = S / RDIAG(J)
80 CONTINUE
100 CONTINUE
END
"
    )
}

/// Builds the `HYBRJ` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(48, 2, 150),
        Scale::Small => source(12, 1, 10),
    };
    Workload {
        name: "HYBRJ",
        description: "MINPACK hybrj: Powell hybrid iterations — many \
                      vector-local residual evaluations around one \
                      Householder QR factorization and backsolve per \
                      iteration",
        source,
        variants: vec![
            Variant {
                name: "HYBRJ",
                level: DirectiveLevel::AtLevel(3),
            },
            Variant {
                name: "HYBRJ-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "HYBRJ-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 1_000);
    }

    #[test]
    fn footprint() {
        // FJAC 48x48 = 2304 elems = 36 pages + five 1-page vectors.
        assert_eq!(testutil::paper_pages(workload), 36 + 5);
    }
}
