//! `CONDUCT` — explicit heat conduction on a 2-D plate with spatially
//! varying conductivity: per time step, a five-point stencil update into
//! a new-temperature grid followed by a copy-back sweep. Sized so the
//! virtual space is ~270 pages, matching the figure the paper quotes for
//! this program.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nt: u32) -> String {
    format!(
        "\
PROGRAM CONDUCT
PARAMETER (N = {n}, NT = {nt})
DIMENSION T(N,N), TN(N,N), CK(N,N)
C Initial temperature and conductivity fields.
DO 5 J = 1, N
  DO 6 I = 1, N
    T(I,J) = 100.0
    CK(I,J) = 0.1 + 0.001 * FLOAT(I + J)
6 CONTINUE
5 CONTINUE
DO 10 S = 1, NT
C Stencil update with variable conductivity.
  DO 20 J = 2, N - 1
    DO 30 I = 2, N - 1
      TN(I,J) = T(I,J) + CK(I,J) * (T(I-1,J) + T(I+1,J) + T(I,J-1) + T(I,J+1) - 4.0 * T(I,J))
30  CONTINUE
20 CONTINUE
C Copy back.
  DO 40 J = 2, N - 1
    DO 50 I = 2, N - 1
      T(I,J) = TN(I,J)
50  CONTINUE
40 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `CONDUCT` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(76, 5),
        Scale::Small => source(12, 2),
    };
    Workload {
        name: "CONDUCT",
        description: "Explicit 2-D heat conduction with variable \
                      conductivity: stencil update plus copy-back per time \
                      step (~270-page virtual space at paper scale)",
        source,
        variants: vec![
            Variant {
                name: "CONDUCT",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "CONDUCT-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "CONDUCT-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 1_000);
    }

    #[test]
    fn footprint_matches_the_paper() {
        // The paper: "program CONDUCT has a total of 270 pages in its
        // virtual space". Three 76x76 grids give 273.
        let pages = testutil::paper_pages(workload);
        assert!((265..=275).contains(&pages), "got {pages}");
    }
}
