//! `TQL` — EISPACK's TQL2 shape: QL iterations with implicit shifts on a
//! symmetric tridiagonal matrix, accumulating the eigenvector transforms
//! by rotating adjacent columns of `Z`. The sweep structure (per
//! eigenvalue, per iteration, per rotation, per vector element) gives the
//! 4-deep hierarchical locality the paper's Table 1 exercises with the
//! `TQL1` and `TQL2` directive sets.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nit: u32) -> String {
    format!(
        "\
PROGRAM TQL
PARAMETER (N = {n}, NIT = {nit})
DIMENSION D(N), E(N), Z(N,N)
C Identity eigenvector matrix; 2 / -1 tridiagonal.
DO 5 J = 1, N
  DO 6 I = 1, N
    Z(I,J) = 0.0
6 CONTINUE
  Z(J,J) = 1.0
  D(J) = 2.0
  E(J) = -1.0
5 CONTINUE
C QL sweeps with implicit shift for each leading index L.
DO 10 L = 1, N - 1
  DO 20 IT = 1, NIT
    G = D(L)
    DO 30 I = L, N - 1
      F = E(I)
      R = SQRT(F * F + G * G) + 0.0001
      CO = G / R
      SI = F / R
      G = D(I+1) - 0.5 * F
      D(I) = D(I) * CO + F * SI
      E(I) = E(I) * CO
C     Rotate eigenvector columns I and I+1.
      DO 40 K = 1, N
        F = Z(K,I+1)
        Z(K,I+1) = SI * Z(K,I) + CO * F
        Z(K,I) = CO * Z(K,I) - SI * F
40    CONTINUE
30  CONTINUE
20 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `TQL` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(40, 2),
        Scale::Small => source(10, 1),
    };
    Workload {
        name: "TQL",
        description: "EISPACK TQL2 shape: tridiagonal QL eigenvalue \
                      iterations with eigenvector accumulation via adjacent \
                      column rotations",
        source,
        variants: vec![
            Variant {
                name: "TQL1",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "TQL2",
                level: DirectiveLevel::Innermost,
            },
            Variant {
                name: "TQL-OUTER",
                level: DirectiveLevel::Outermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 1_000);
    }

    #[test]
    fn table1_variants() {
        let w = workload(Scale::Small);
        assert!(w.variant("TQL1").is_some());
        assert!(w.variant("TQL2").is_some());
    }
}
