//! `INIT` — an initialization-dominated program: builds several fields
//! with mixed traversal orders (column-major fill, then a row-major
//! derived fill that strides across pages, then boundary extraction).
//! Row-order phases are the LRU-hostile part the paper's Table 3 numbers
//! for `INIT` reflect.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nrep: u32) -> String {
    format!(
        "\
PROGRAM INIT
PARAMETER (N = {n}, NREP = {nrep})
DIMENSION A(N,N), B(N,N), CC(N,N)
DO 10 R = 1, NREP
C Column-major fill of A.
  DO 20 J = 1, N
    DO 30 I = 1, N
      A(I,J) = FLOAT(I) + 2.0 * FLOAT(J)
30  CONTINUE
20 CONTINUE
C Row-major derived fill of B (strides across pages).
  DO 40 I = 1, N
    DO 50 J = 1, N
      B(I,J) = 2.0 * A(I,J) + 1.0
50  CONTINUE
40 CONTINUE
C Boundary rows into CC.
  DO 60 J = 1, N
    CC(1,J) = B(1,J)
    CC(N,J) = B(N,J)
60 CONTINUE
C Interior difference field.
  DO 70 J = 2, N - 1
    DO 80 I = 1, N
      CC(I,J) = A(I,J) - B(I,J)
80  CONTINUE
70 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `INIT` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(48, 6),
        Scale::Small => source(10, 2),
    };
    Workload {
        name: "INIT",
        description: "Initialization-dominated field setup with mixed \
                      column- and row-order fills and boundary extraction",
        source,
        variants: vec![
            Variant {
                name: "INIT",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "INIT-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "INIT-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 500);
    }

    #[test]
    fn three_grids() {
        // 48x48 = 2304 elements = 36 pages each.
        assert_eq!(testutil::paper_pages(workload), 3 * 36);
    }
}
