//! `MAIN` — the driver of a UIARL (University of Illinois Atmospheric
//! Research Lab) style grid code: repeated time steps over 2-D fields
//! with both column-order updates and row-order reductions, inside an
//! outer parameter-sweep loop. This is the program the paper runs with
//! four different directive sets (`MAIN`, `MAIN1`, `MAIN2`, `MAIN3`).

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, ns: u32, nt: u32) -> String {
    format!(
        "\
PROGRAM MAIN
PARAMETER (N = {n}, NS = {ns}, NT = {nt})
DIMENSION U(N,N), V(N,N), W(N,N), Z0(N,N), P(N), Q(N)
C Initialize the prognostic fields, column-major.
DO 5 J = 1, N
  DO 6 I = 1, N
    U(I,J) = 0.01 * FLOAT(I + J)
    V(I,J) = 0.02 * FLOAT(I)
    W(I,J) = 0.015 * FLOAT(J)
6 CONTINUE
5 CONTINUE
C Parameter sweep over NS scenario settings.
DO 10 S = 1, NS
  DO 20 T = 1, NT
C   Advect: column-order update of U from V.
    DO 30 J = 1, N
      DO 40 K = 1, N
        U(K,J) = U(K,J) + 0.5 * V(K,J)
40    CONTINUE
30  CONTINUE
C   Diagnose: row-order reduction of W into P, Q.
    DO 50 J = 1, N
      P(J) = 0.0
      DO 60 K = 1, N
        P(J) = P(J) + W(J,K)
60    CONTINUE
      Q(J) = P(J) / FLOAT(N)
50  CONTINUE
20 CONTINUE
C   Archive the scenario's final field (per-scenario locality).
  DO 70 J = 1, N
    DO 80 K = 1, N
      Z0(K,J) = U(K,J)
80  CONTINUE
70 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `MAIN` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(36, 5, 5),
        Scale::Small => source(10, 2, 2),
    };
    Workload {
        name: "MAIN",
        description: "UIARL-style atmospheric driver: time-stepped field \
                      updates plus row-order diagnostics under a parameter \
                      sweep (4-deep loop nest)",
        source,
        variants: vec![
            Variant {
                name: "MAIN",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "MAIN1",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "MAIN2",
                level: DirectiveLevel::AtLevel(3),
            },
            Variant {
                name: "MAIN3",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 1_000);
    }

    #[test]
    fn has_four_variants_like_table_1() {
        assert_eq!(workload(Scale::Small).variants.len(), 4);
    }

    #[test]
    fn nest_is_four_deep() {
        let w = workload(Scale::Small);
        let a =
            cdmm_locality::analyze_program(&w.source, cdmm_locality::PageGeometry::PAPER).unwrap();
        assert_eq!(a.tree.max_depth(), 4);
    }
}
