//! `APPROX` — least-squares function approximation: build a design
//! matrix of basis functions, form the normal equations `G = TᵀT`
//! (column-dot-column inner loops), and eliminate. The elimination phase
//! walks `G` row-wise, crossing a page per step.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(m: u32, k: u32) -> String {
    format!(
        "\
PROGRAM APPROX
PARAMETER (M = {m}, K = {k})
DIMENSION T(M,K), G(K,K), B(K), Y(M)
C Design matrix: K cosine basis functions sampled at M points.
DO 10 J = 1, K
  DO 20 I = 1, M
    T(I,J) = COS(FLOAT(J) * FLOAT(I) * 0.01)
20 CONTINUE
10 CONTINUE
DO 25 I = 1, M
  Y(I) = SIN(0.05 * FLOAT(I))
25 CONTINUE
C Normal matrix G = T'T, one column dot product per entry.
DO 30 J = 1, K
  DO 40 L = 1, K
    S = 0.0
    DO 50 I = 1, M
      S = S + T(I,J) * T(I,L)
50  CONTINUE
    G(L,J) = S
40 CONTINUE
30 CONTINUE
C Right-hand side B = T'Y.
DO 60 J = 1, K
  S = 0.0
  DO 70 I = 1, M
    S = S + T(I,J) * Y(I)
70 CONTINUE
  B(J) = S
60 CONTINUE
C Gaussian elimination on G (diagonally dominant, no pivoting).
DO 80 J = 1, K - 1
  DO 90 L = J + 1, K
    F = G(L,J) / (G(J,J) + 0.0001)
    DO 95 I = J, K
      G(L,I) = G(L,I) - F * G(J,I)
95  CONTINUE
    B(L) = B(L) - F * B(J)
90 CONTINUE
80 CONTINUE
END
"
    )
}

/// Builds the `APPROX` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(96, 32),
        Scale::Small => source(20, 6),
    };
    Workload {
        name: "APPROX",
        description: "Least-squares approximation: normal equations from a \
                      cosine design matrix, then Gaussian elimination",
        source,
        variants: vec![
            Variant {
                name: "APPROX",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "APPROX-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "APPROX-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 1_000);
    }

    #[test]
    fn footprint() {
        // T: 96x32 = 3072 elems = 48 pages; G: 32x32 = 16 pages;
        // B: 1 page; Y: 96 elements = 2 pages.
        assert_eq!(testutil::paper_pages(workload), 48 + 16 + 1 + 2);
    }
}
