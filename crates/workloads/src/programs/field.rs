//! `FIELD` — a potential-field relaxation: Gauss-Seidel sweeps of a
//! five-point stencil over a 2-D grid with a source term. Column-order
//! sweeps give tight inner-loop locality; the whole grid is re-spanned
//! every iteration, forming the outer-level locality.

use crate::{DirectiveLevel, Scale, Variant, Workload};

fn source(n: u32, nit: u32) -> String {
    format!(
        "\
PROGRAM FIELD
PARAMETER (N = {n}, NIT = {nit})
DIMENSION PHI(N,N), RHO(N,N)
DO 5 J = 1, N
  DO 6 I = 1, N
    PHI(I,J) = 0.0
    RHO(I,J) = 0.001 * FLOAT(I) * FLOAT(J)
6 CONTINUE
5 CONTINUE
DO 10 IT = 1, NIT
  DO 20 J = 2, N - 1
    DO 30 I = 2, N - 1
      PHI(I,J) = 0.25 * (PHI(I-1,J) + PHI(I+1,J) + PHI(I,J-1) + PHI(I,J+1) + RHO(I,J))
30  CONTINUE
20 CONTINUE
10 CONTINUE
END
"
    )
}

/// Builds the `FIELD` workload.
pub fn workload(scale: Scale) -> Workload {
    let source = match scale {
        Scale::Paper => source(60, 10),
        Scale::Small => source(12, 2),
    };
    Workload {
        name: "FIELD",
        description: "Gauss-Seidel relaxation of a five-point stencil over \
                      a 2-D potential field with a source term",
        source,
        variants: vec![
            Variant {
                name: "FIELD",
                level: DirectiveLevel::AtLevel(2),
            },
            Variant {
                name: "FIELD-OUTER",
                level: DirectiveLevel::Outermost,
            },
            Variant {
                name: "FIELD-INNER",
                level: DirectiveLevel::Innermost,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::testutil;

    #[test]
    fn traces_in_bounds() {
        let t = testutil::trace_small(workload);
        assert!(t.ref_count() > 500);
    }

    #[test]
    fn two_equal_grids() {
        // 60x60 = 3600 elements = 57 pages each.
        assert_eq!(testutil::paper_pages(workload), 2 * 57);
    }
}
