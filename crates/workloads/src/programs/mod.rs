//! One module per traced program. Each exposes
//! `workload(scale) -> Workload` and keeps its source generator private.

pub mod approx;
pub mod conduct;
pub mod fdjac;
pub mod field;
pub mod hwscrt;
pub mod hybrj;
pub mod init;
pub mod main_;
pub mod tql;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{Scale, Workload};

    /// Traces a workload at small scale end-to-end: this catches
    /// out-of-bounds subscripts and runaway loops in the program text.
    pub fn trace_small(make: fn(Scale) -> Workload) -> cdmm_trace::Trace {
        let w = make(Scale::Small);
        cdmm_trace::trace_program(&w.source, cdmm_locality::PageGeometry::PAPER)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
    }

    /// Virtual pages of the workload at paper scale.
    pub fn paper_pages(make: fn(Scale) -> Workload) -> u32 {
        let w = make(Scale::Paper);
        let mut p = cdmm_lang::parse(&w.source).unwrap();
        let syms = cdmm_lang::analyze(&mut p).unwrap();
        let layout = cdmm_trace::MemoryLayout::new(&syms, cdmm_locality::PageGeometry::PAPER);
        layout.total_pages()
    }
}
