//! Virtual-memory layout of a program's arrays.
//!
//! Arrays are placed one after another in declaration order, each starting
//! on a fresh page (so the paper's per-array page accounting — `AVS`,
//! `CVS` — matches the layout exactly). Elements within an array are
//! column-major, FORTRAN style: `A(i,j)` lives at linear offset
//! `(j-1)·M + (i-1)`.

use std::collections::BTreeMap;

use cdmm_lang::sema::SymbolTable;
use cdmm_locality::PageGeometry;

use crate::event::{PageId, PageRange};

/// One array's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRegion {
    /// First page of the array.
    pub base_page: u32,
    /// Pages occupied (the array's `AVS`).
    pub pages: u32,
    /// Rows (`M`).
    pub rows: u64,
    /// Columns (`N`, 1 for vectors).
    pub cols: u64,
}

impl ArrayRegion {
    /// The array's page range.
    pub fn range(&self) -> PageRange {
        PageRange::new(self.base_page, self.base_page + self.pages)
    }
}

/// The page layout of one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    geometry: PageGeometry,
    regions: BTreeMap<String, ArrayRegion>,
    total_pages: u32,
}

impl MemoryLayout {
    /// Lays out every array of the symbol table.
    pub fn new(symbols: &SymbolTable, geometry: PageGeometry) -> Self {
        let mut regions = BTreeMap::new();
        let mut next_page: u32 = 0;
        for name in &symbols.order {
            let shape = &symbols.arrays[name];
            let pages = geometry.pages_for(shape.elements()) as u32;
            regions.insert(
                name.clone(),
                ArrayRegion {
                    base_page: next_page,
                    pages,
                    rows: shape.rows,
                    cols: shape.cols,
                },
            );
            next_page += pages;
        }
        MemoryLayout {
            geometry,
            regions,
            total_pages: next_page,
        }
    }

    /// The geometry the layout was built with.
    pub fn geometry(&self) -> PageGeometry {
        self.geometry
    }

    /// Total pages in the program's data virtual space (the paper's `V`).
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// The region of one array.
    pub fn region(&self, array: &str) -> Option<&ArrayRegion> {
        self.regions.get(array)
    }

    /// Page ranges for a list of arrays, skipping unknown names.
    pub fn ranges_of(&self, arrays: &[String]) -> Vec<PageRange> {
        arrays
            .iter()
            .filter_map(|a| self.regions.get(a).map(ArrayRegion::range))
            .collect()
    }

    /// Page of element `(row, col)` of `array` (both 1-based).
    ///
    /// Returns `None` for unknown arrays or out-of-bounds subscripts —
    /// the interpreter turns that into a runtime error with context.
    pub fn page_of(&self, array: &str, row: i64, col: i64) -> Option<PageId> {
        let r = self.regions.get(array)?;
        if row < 1 || col < 1 || row as u64 > r.rows || col as u64 > r.cols {
            return None;
        }
        let linear = (col as u64 - 1) * r.rows + (row as u64 - 1);
        let page = r.base_page as u64 + linear / self.geometry.elems_per_page();
        Some(PageId(page as u32))
    }

    /// Linear element offset within the array (0-based), for array storage.
    pub fn linear_of(&self, array: &str, row: i64, col: i64) -> Option<usize> {
        let r = self.regions.get(array)?;
        if row < 1 || col < 1 || row as u64 > r.rows || col as u64 > r.cols {
            return None;
        }
        Some(((col as u64 - 1) * r.rows + (row as u64 - 1)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmm_lang::{analyze, parse};

    fn layout(src: &str) -> MemoryLayout {
        let mut p = parse(src).unwrap();
        let syms = analyze(&mut p).unwrap();
        MemoryLayout::new(&syms, PageGeometry::PAPER)
    }

    #[test]
    fn arrays_are_page_aligned_in_declaration_order() {
        let l = layout("PROGRAM T\nPARAMETER (N = 100)\nDIMENSION A(N), B(N,N), C(N)\nEND");
        let a = l.region("A").unwrap();
        let b = l.region("B").unwrap();
        let c = l.region("C").unwrap();
        assert_eq!(a.base_page, 0);
        assert_eq!(a.pages, 2); // 100 elements / 64 per page.
        assert_eq!(b.base_page, 2);
        assert_eq!(b.pages, 157);
        assert_eq!(c.base_page, 159);
        assert_eq!(l.total_pages(), 161);
    }

    #[test]
    fn column_major_paging() {
        let l = layout("PROGRAM T\nPARAMETER (N = 64)\nDIMENSION A(N,N)\nEND");
        // One column = exactly one page with 64 elements per page.
        assert_eq!(l.page_of("A", 1, 1), Some(PageId(0)));
        assert_eq!(l.page_of("A", 64, 1), Some(PageId(0)));
        assert_eq!(l.page_of("A", 1, 2), Some(PageId(1)));
        assert_eq!(l.page_of("A", 64, 64), Some(PageId(63)));
        // Walking a row strides across pages.
        assert_eq!(l.page_of("A", 5, 10), Some(PageId(9)));
    }

    #[test]
    fn vector_paging_and_bounds() {
        let l = layout("PROGRAM T\nDIMENSION V(130)\nEND");
        assert_eq!(l.page_of("V", 1, 1), Some(PageId(0)));
        assert_eq!(l.page_of("V", 64, 1), Some(PageId(0)));
        assert_eq!(l.page_of("V", 65, 1), Some(PageId(1)));
        assert_eq!(l.page_of("V", 130, 1), Some(PageId(2)));
        assert_eq!(l.page_of("V", 131, 1), None);
        assert_eq!(l.page_of("V", 0, 1), None);
        assert_eq!(l.page_of("V", -3, 1), None);
        assert_eq!(l.page_of("W", 1, 1), None);
    }

    #[test]
    fn linear_offsets_are_column_major() {
        let l = layout("PROGRAM T\nDIMENSION A(3,2)\nEND");
        assert_eq!(l.linear_of("A", 1, 1), Some(0));
        assert_eq!(l.linear_of("A", 2, 1), Some(1));
        assert_eq!(l.linear_of("A", 3, 1), Some(2));
        assert_eq!(l.linear_of("A", 1, 2), Some(3));
        assert_eq!(l.linear_of("A", 3, 2), Some(5));
        assert_eq!(l.linear_of("A", 4, 1), None);
    }

    #[test]
    fn ranges_of_skips_unknown() {
        let l = layout("PROGRAM T\nDIMENSION V(64), W(64)\nEND");
        let ranges = l.ranges_of(&["V".into(), "Z".into(), "W".into()]);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], PageRange::new(0, 1));
        assert_eq!(ranges[1], PageRange::new(1, 2));
    }

    #[test]
    fn small_array_still_gets_a_page() {
        let l = layout("PROGRAM T\nDIMENSION V(3)\nEND");
        assert_eq!(l.region("V").unwrap().pages, 1);
        assert_eq!(l.total_pages(), 1);
    }
}
