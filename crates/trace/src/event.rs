//! Trace events: page references and runtime directive events.

use cdmm_lang::ast::AllocArg;

/// A virtual page number within one program's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A half-open range of pages `[start, end)`, used to describe the pages
/// belonging to an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page in the range.
    pub start: u32,
    /// One past the last page.
    pub end: u32,
}

impl PageRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "invalid page range {start}..{end}");
        PageRange { start, end }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the range covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Does the range contain `page`?
    pub fn contains(&self, page: PageId) -> bool {
        page.0 >= self.start && page.0 < self.end
    }

    /// Iterates over the pages in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageId> {
        (self.start..self.end).map(PageId)
    }
}

/// One event in a program's execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A reference (read or write) to one page.
    Ref(PageId),
    /// Runtime `ALLOCATE` call with its prioritized request list.
    Alloc(Vec<AllocArg>),
    /// Runtime `LOCK` call; the named arrays resolved to page ranges.
    Lock {
        /// Release priority (larger released first under pressure).
        pj: u32,
        /// Page ranges of the arrays named in the directive.
        ranges: Vec<PageRange>,
    },
    /// Runtime `UNLOCK` call for the given ranges.
    Unlock {
        /// Page ranges of the arrays named in the directive.
        ranges: Vec<PageRange>,
    },
}

/// A complete reference trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, in execution order.
    pub events: Vec<Event>,
    /// Total virtual pages of the traced program (0 when unknown, e.g.
    /// for synthetic traces built directly from events).
    pub virtual_pages: u32,
}

impl Trace {
    /// Creates a trace from raw events.
    pub fn from_events(events: Vec<Event>) -> Self {
        let max_page = events
            .iter()
            .filter_map(|e| match e {
                Event::Ref(p) => Some(p.0 + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Trace {
            events,
            virtual_pages: max_page,
        }
    }

    /// Number of page-reference events (the paper's trace length `R`).
    pub fn ref_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Ref(_)))
            .count() as u64
    }

    /// Number of distinct pages referenced.
    pub fn distinct_pages(&self) -> u32 {
        let mut seen = std::collections::HashSet::new();
        for e in &self.events {
            if let Event::Ref(p) = e {
                seen.insert(*p);
            }
        }
        seen.len() as u32
    }

    /// Iterates over only the page references.
    pub fn refs(&self) -> impl Iterator<Item = PageId> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Ref(p) => Some(*p),
            _ => None,
        })
    }

    /// Number of directive events in the trace.
    pub fn directive_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !matches!(e, Event::Ref(_)))
            .count() as u64
    }
}

/// One event as seen by a streaming consumer: references are delivered
/// by value (the hot case), directives by reference so their payloads
/// (`ALLOCATE` request lists, `LOCK` ranges) are never cloned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventRef<'a> {
    /// A page reference.
    Ref(PageId),
    /// A runtime directive (`Alloc`/`Lock`/`Unlock`; never `Ref`).
    Directive(&'a Event),
}

/// One constant-stride reference run as plain data: `len` references
/// `start, start+stride, start+2·stride, …`. This is the body element
/// of a [`RunRef::Cycle`] (and of `COp::Cycle` in the compressed
/// trace): a loop iteration is a short sequence of these, repeated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First page of the run.
    pub start: PageId,
    /// Per-reference page delta (0 for repeated touches).
    pub stride: i32,
    /// Number of references (≥ 1).
    pub len: u32,
}

impl Run {
    /// Streams the run's pages in order.
    #[inline]
    pub fn for_each_page<F: FnMut(PageId)>(&self, mut f: F) {
        let mut p = self.start.0 as i64;
        let stride = self.stride as i64;
        for _ in 0..self.len {
            f(PageId(p as u32));
            p += stride;
        }
    }
}

/// One *run* as seen by a streaming consumer: a maximal constant-stride
/// burst of page references, a repeated run-sequence (a loop), or a
/// directive delivered verbatim. This is the unit the run-level policy
/// kernels consume — a source that knows its run structure (a
/// [`crate::CompressedTrace`]) hands whole runs and cycles over so the
/// kernel can apply their closed-form effect, while a flat [`Trace`]
/// degrades to length-1 runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunRef<'a> {
    /// `len` references `start, start+stride, start+2·stride, …`.
    /// Every decoded page is a valid `u32` by construction.
    Run {
        /// First page of the run.
        start: PageId,
        /// Per-reference page delta (0 for repeated touches).
        stride: i32,
        /// Number of references (≥ 1).
        len: u32,
    },
    /// The run sequence `body`, repeated `reps` times back-to-back — a
    /// loop nest's steady beat. Bodies never contain directives, and
    /// `reps ≥ 2`.
    Cycle {
        /// One iteration's runs, in reference order.
        body: &'a [Run],
        /// How many times the body repeats (≥ 2).
        reps: u32,
    },
    /// A runtime directive (`Alloc`/`Lock`/`Unlock`; never `Ref`).
    Directive(&'a Event),
}

/// Anything the simulator can stream events out of — a plain [`Trace`]
/// or a compressed one — without materializing a `Vec<Event>`.
///
/// Internal iteration (`for_each_*` taking a closure) rather than an
/// `Iterator` lets each source keep its decode state in registers: a
/// compressed run decodes as a tight counted loop, which is the point
/// of compressing in the first place.
pub trait EventSource {
    /// Streams every event in execution order.
    fn for_each_event<F: FnMut(EventRef<'_>)>(&self, f: F);

    /// Streams events while `keep_going()` returns `true`, polling it at
    /// coarse decode boundaries — once per compressed *run* for
    /// [`crate::CompressedTrace`], once per event for a flat [`Trace`] —
    /// so cancellation never puts a check inside the per-reference hot
    /// loop. Returns `true` when the whole source was consumed, `false`
    /// when the poll stopped the stream early.
    fn for_each_event_while<K, F>(&self, keep_going: K, f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(EventRef<'_>);

    /// Streams the trace as constant-stride [`RunRef`]s plus verbatim
    /// directives. Runs never contain directives — a directive always
    /// splits the surrounding reference burst (the compressed builder
    /// flushes its pending run before every directive). The default
    /// degrades each reference to a length-1 run; sources that know
    /// their run structure override this to deliver whole runs.
    fn for_each_run<F: FnMut(RunRef<'_>)>(&self, mut f: F) {
        self.for_each_event(|e| match e {
            EventRef::Ref(p) => f(RunRef::Run {
                start: p,
                stride: 0,
                len: 1,
            }),
            EventRef::Directive(d) => f(RunRef::Directive(d)),
        });
    }

    /// [`Self::for_each_run`] with the same cancellation contract as
    /// [`Self::for_each_event_while`]: `keep_going()` is polled at run
    /// boundaries (once per compressed op), never inside a run. Returns
    /// `true` when the whole source was consumed.
    fn for_each_run_while<K, F>(&self, keep_going: K, mut f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(RunRef<'_>),
    {
        self.for_each_event_while(keep_going, |e| match e {
            EventRef::Ref(p) => f(RunRef::Run {
                start: p,
                stride: 0,
                len: 1,
            }),
            EventRef::Directive(d) => f(RunRef::Directive(d)),
        })
    }

    /// Streams only the page references, in order.
    fn for_each_ref<F: FnMut(PageId)>(&self, mut f: F) {
        self.for_each_event(|e| {
            if let EventRef::Ref(p) = e {
                f(p)
            }
        });
    }

    /// Number of page references (the paper's trace length `R`).
    fn ref_count(&self) -> u64;

    /// Sizing hint for page-indexed tables: one past the highest page
    /// id that can appear (the program's virtual size when known).
    fn page_count_hint(&self) -> usize;
}

impl EventSource for Trace {
    fn for_each_event<F: FnMut(EventRef<'_>)>(&self, mut f: F) {
        for e in &self.events {
            match e {
                Event::Ref(p) => f(EventRef::Ref(*p)),
                other => f(EventRef::Directive(other)),
            }
        }
    }

    fn for_each_event_while<K, F>(&self, mut keep_going: K, mut f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(EventRef<'_>),
    {
        for e in &self.events {
            if !keep_going() {
                return false;
            }
            match e {
                Event::Ref(p) => f(EventRef::Ref(*p)),
                other => f(EventRef::Directive(other)),
            }
        }
        true
    }

    fn for_each_ref<F: FnMut(PageId)>(&self, mut f: F) {
        for e in &self.events {
            if let Event::Ref(p) = e {
                f(*p)
            }
        }
    }

    fn ref_count(&self) -> u64 {
        Trace::ref_count(self)
    }

    fn page_count_hint(&self) -> usize {
        if self.virtual_pages > 0 {
            self.virtual_pages as usize
        } else {
            // Synthetic traces built raw: fall back to a scan.
            self.refs().map(|p| p.0 as usize + 1).max().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_range_basics() {
        let r = PageRange::new(4, 8);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(PageId(4)));
        assert!(r.contains(PageId(7)));
        assert!(!r.contains(PageId(8)));
        assert_eq!(r.iter().count(), 4);
        assert!(PageRange::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid page range")]
    fn inverted_range_panics() {
        PageRange::new(5, 4);
    }

    #[test]
    fn trace_counting() {
        let t = Trace::from_events(vec![
            Event::Ref(PageId(0)),
            Event::Alloc(vec![]),
            Event::Ref(PageId(3)),
            Event::Ref(PageId(0)),
        ]);
        assert_eq!(t.ref_count(), 3);
        assert_eq!(t.distinct_pages(), 2);
        assert_eq!(t.directive_count(), 1);
        assert_eq!(t.virtual_pages, 4);
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert_eq!(pages, vec![0, 3, 0]);
    }
}
