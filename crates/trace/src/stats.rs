//! Simple trace statistics used by reports and sanity tests.

use std::collections::HashMap;

use crate::event::{Event, PageId, Trace};

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Page references (`R` in the paper).
    pub refs: u64,
    /// Distinct pages touched.
    pub distinct_pages: u32,
    /// Directive events.
    pub directives: u64,
    /// Reference count of the most-touched page.
    pub hottest_page_refs: u64,
    /// Mean working-set size at the given window, if one was requested.
    pub mean_ws: Option<f64>,
}

impl TraceStats {
    /// Computes statistics; `ws_window` optionally also computes the mean
    /// working-set size for that window (Denning's `W(t, τ)` averaged over
    /// reference time), which is handy for choosing τ ranges in sweeps.
    pub fn of(trace: &Trace, ws_window: Option<u64>) -> TraceStats {
        let mut counts: HashMap<PageId, u64> = HashMap::new();
        let mut refs = 0u64;
        let mut directives = 0u64;
        for e in &trace.events {
            match e {
                Event::Ref(p) => {
                    refs += 1;
                    *counts.entry(*p).or_insert(0) += 1;
                }
                _ => directives += 1,
            }
        }
        let mean_ws = ws_window.map(|tau| mean_working_set(trace, tau));
        TraceStats {
            refs,
            distinct_pages: counts.len() as u32,
            directives,
            hottest_page_refs: counts.values().copied().max().unwrap_or(0),
            mean_ws,
        }
    }
}

/// Mean working-set size for window `tau` (in references), averaged over
/// reference time. `tau = 0` gives 0.
pub fn mean_working_set(trace: &Trace, tau: u64) -> f64 {
    if tau == 0 {
        return 0.0;
    }
    let mut last_ref: HashMap<PageId, u64> = HashMap::new();
    let mut expiry: std::collections::VecDeque<(u64, PageId)> = Default::default();
    let mut size = 0u64;
    let mut acc = 0u64;
    let mut t = 0u64;
    for e in &trace.events {
        let Event::Ref(p) = e else { continue };
        t += 1;
        // Expire pages whose last reference fell out of the window.
        while let Some(&(texp, page)) = expiry.front() {
            if texp + tau <= t {
                expiry.pop_front();
                if last_ref.get(&page) == Some(&texp) {
                    last_ref.remove(&page);
                    size -= 1;
                }
            } else {
                break;
            }
        }
        if last_ref.insert(*p, t).is_none() {
            size += 1;
        }
        expiry.push_back((t, *p));
        acc += size;
    }
    if t == 0 {
        0.0
    } else {
        acc as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn stats_count_refs_and_directives() {
        let t = Trace::from_events(vec![
            Event::Ref(PageId(0)),
            Event::Ref(PageId(0)),
            Event::Ref(PageId(1)),
            Event::Alloc(vec![]),
        ]);
        let s = TraceStats::of(&t, None);
        assert_eq!(s.refs, 3);
        assert_eq!(s.distinct_pages, 2);
        assert_eq!(s.directives, 1);
        assert_eq!(s.hottest_page_refs, 2);
        assert!(s.mean_ws.is_none());
    }

    #[test]
    fn mean_ws_of_single_page_is_one() {
        let t = Trace::from_events(vec![Event::Ref(PageId(7)); 100]);
        let ws = mean_working_set(&t, 10);
        assert!((ws - 1.0).abs() < 1e-9, "{ws}");
    }

    #[test]
    fn mean_ws_grows_with_window_on_cyclic_trace() {
        let t = synth::cyclic(10, 20);
        let small = mean_working_set(&t, 2);
        let large = mean_working_set(&t, 10);
        assert!(small < large, "{small} vs {large}");
        // With window >= cycle length, the whole cycle is in the set.
        let full = mean_working_set(&t, 10);
        assert!(full > 8.0, "{full}");
    }

    #[test]
    fn zero_window_is_zero() {
        let t = synth::cyclic(4, 2);
        assert_eq!(mean_working_set(&t, 0), 0.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        let s = TraceStats::of(&t, Some(8));
        assert_eq!(s.refs, 0);
        assert_eq!(s.mean_ws, Some(0.0));
    }
}
