//! Seeded per-tenant perturbation for fleet workload cloning.
//!
//! A fleet clones a handful of paper workloads into thousands of
//! tenants; running byte-identical copies would measure nothing but the
//! scheduler. [`TenantJitter`] derives, from a fleet seed and a tenant
//! index, a small deterministic perturbation — arrival stagger, policy
//! parameter scaling, a page-geometry step, and a chaos salt for the
//! [`crate::DirectiveFuzzer`] — in the spirit of FORAY-GEN's perturbed
//! affine workload generation. The same `(seed, index)` pair always
//! yields the same jitter, on any thread, which is what keeps fleet
//! reports byte-identical across execution geometries.

use crate::synth::SplitMix64;

/// Deterministic per-tenant perturbation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantJitter {
    /// Arrival stagger in half-quantum slots (0..8).
    pub arrival_slots: u64,
    /// Scale for reference-window parameters (WS τ), in permille
    /// (750..=1250).
    pub tau_permille: u64,
    /// Scale for frame-count parameters (LRU/FIFO/CLOCK allocations,
    /// PFF thresholds), in permille (750..=1250).
    pub frames_permille: u64,
    /// Page-geometry choice index (0..3): smaller, baseline, or larger
    /// pages for this tenant's trace generation.
    pub geometry_step: u32,
    /// Seed salt for the tenant's [`crate::DirectiveFuzzer`] when the
    /// tenant is a designated chaos tenant.
    pub chaos_salt: u64,
}

impl TenantJitter {
    /// Derives the jitter for one tenant of a seeded fleet.
    pub fn for_tenant(seed: u64, index: u64) -> Self {
        // Decorrelate the per-tenant stream from neighboring indices:
        // mix the index through one SplitMix64 step before seeding.
        let mut rng = SplitMix64::new(seed ^ SplitMix64::new(index).next_u64());
        TenantJitter {
            arrival_slots: rng.below(8),
            tau_permille: 750 + rng.below(501),
            frames_permille: 750 + rng.below(501),
            geometry_step: rng.below(3) as u32,
            chaos_salt: rng.next_u64(),
        }
    }

    /// The identity jitter: no stagger, no scaling, baseline geometry.
    pub fn neutral() -> Self {
        TenantJitter {
            arrival_slots: 0,
            tau_permille: 1000,
            frames_permille: 1000,
            geometry_step: 1,
            chaos_salt: 0,
        }
    }

    /// Arrival time in clock units for the given scheduling quantum:
    /// each slot is half a quantum, so tenants land spread over the
    /// first four quanta of their cell.
    pub fn arrival(&self, quantum: u64) -> u64 {
        self.arrival_slots * (quantum / 2)
    }

    /// Applies a permille scale to a parameter, never collapsing it
    /// below 1.
    pub fn scale(value: u64, permille: u64) -> u64 {
        ((value as u128 * permille as u128) / 1000).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic() {
        assert_eq!(
            TenantJitter::for_tenant(42, 7),
            TenantJitter::for_tenant(42, 7)
        );
        assert_ne!(
            TenantJitter::for_tenant(42, 7),
            TenantJitter::for_tenant(42, 8)
        );
        assert_ne!(
            TenantJitter::for_tenant(42, 7),
            TenantJitter::for_tenant(43, 7)
        );
    }

    #[test]
    fn jitter_ranges_hold() {
        for i in 0..500 {
            let j = TenantJitter::for_tenant(1234, i);
            assert!(j.arrival_slots < 8);
            assert!((750..=1250).contains(&j.tau_permille));
            assert!((750..=1250).contains(&j.frames_permille));
            assert!(j.geometry_step < 3);
        }
    }

    #[test]
    fn neighboring_indices_decorrelate() {
        // Consecutive tenants of the same seed should not share a salt.
        let a = TenantJitter::for_tenant(9, 0);
        let b = TenantJitter::for_tenant(9, 1);
        assert_ne!(a.chaos_salt, b.chaos_salt);
    }

    #[test]
    fn scale_floors_at_one() {
        assert_eq!(TenantJitter::scale(2000, 1000), 2000);
        assert_eq!(TenantJitter::scale(2000, 750), 1500);
        assert_eq!(TenantJitter::scale(1, 750), 1);
        assert_eq!(TenantJitter::scale(0, 1250), 1);
    }

    #[test]
    fn neutral_is_identity() {
        let n = TenantJitter::neutral();
        assert_eq!(n.arrival(300), 0);
        assert_eq!(TenantJitter::scale(64, n.frames_permille), 64);
    }
}
