//! Inter-reference gap extraction: the one-pass substrate for the WS
//! curve kernel.
//!
//! Denning's `WS(τ)` decides everything from *gaps*. A reference faults
//! iff the backward gap to the page's previous reference exceeds `τ`
//! (cold references have an infinite gap), and a reference's residency
//! contribution ends either when the page is re-referenced (forward gap
//! `h`) or when it ages out `τ + 1` ticks later — whichever comes
//! first. One pass that records every occurrence's backward gap,
//! forward gap, and residency span therefore answers *every* window
//! `τ ≥ 1` at once; [`GapProfile`] is that pass.
//!
//! The pass consumes the trace at run level ([`EventSource::for_each_run`])
//! and never expands what the compressed form batches:
//!
//! - a stride-0 run of length `L` is one real occurrence plus `L − 1`
//!   gap-1 re-touches, which can never fault (`τ ≥ 1`) and never age
//!   out mid-span — they collapse to a span-histogram bump;
//! - a [`RunRef::Cycle`] is decoded for one iteration, after which
//!   every occurrence's gap pattern is periodic in the cycle period, so
//!   iterations `1..reps-1` are emitted as arithmetic *groups*
//!   (`t0, t0+period, …`) instead of individual occurrences.
//!
//! Directive events never move the reference clock and are skipped, so
//! the profile is exact for any policy whose clock ticks on references
//! only (LRU, WS — the directive-blind families).

use std::collections::HashMap;

use crate::event::{EventSource, PageId, Run, RunRef};

/// An arithmetic batch of reference occurrences sharing one gap value:
/// `n` occurrences at times `t0, t0 + step, …, t0 + (n-1)·step`.
///
/// Single occurrences are groups with `n == 1`. Cold occurrences (no
/// previous reference) and trace-final occurrences (no next reference)
/// carry [`u64::MAX`] as their backward/forward gap respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapGroup {
    /// The gap value (backward gap in `by_gap`, forward gap in
    /// `by_next`); `u64::MAX` encodes "infinite".
    pub gap: u64,
    /// Time (1-based reference tick) of the first occurrence.
    pub t0: u64,
    /// Tick distance between consecutive occurrences in the group.
    pub step: u64,
    /// Number of occurrences in the group (`≥ 1`).
    pub n: u64,
}

impl GapGroup {
    /// Iterates the occurrence times of the group.
    pub fn times(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.t0 + i * self.step)
    }
}

/// The complete inter-reference gap profile of one trace: every
/// occurrence's backward gap, forward gap, and residency span, stored
/// as sorted group arrays with prefix sums so per-window queries are
/// logarithmic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapProfile {
    refs: u64,
    /// Occurrence groups sorted by backward gap, descending (cold
    /// first). Gap-1 occurrences are elided — they can never fault.
    by_gap: Vec<GapGroup>,
    /// Cumulative occurrence counts over `by_gap`.
    gap_cum: Vec<u64>,
    /// Occurrence groups sorted by forward gap, descending (trace-final
    /// occurrences first). Gap-1 occurrences are elided — they can
    /// never age out before their next touch.
    by_next: Vec<GapGroup>,
    /// Residency spans `min(forward gap, R − t + 1)` aggregated as
    /// `(span, count)`, ascending. Every reference occurrence counts.
    spans: Vec<(u64, u64)>,
    /// Prefix occurrence counts over `spans`.
    span_cum_count: Vec<u64>,
    /// Prefix `Σ span·count` over `spans`.
    span_cum_sum: Vec<u128>,
}

impl GapProfile {
    /// Extracts the profile in one run-level pass.
    pub fn compute<S: EventSource + ?Sized>(trace: &S) -> GapProfile {
        let mut x = Extract::new(trace.page_count_hint());
        trace.for_each_run(|run| x.feed(run));
        x.finish()
    }

    /// [`GapProfile::compute`] under a cooperative cancellation poll,
    /// consulted once per compressed op. Returns `None` when the poll
    /// stopped the stream early.
    pub fn compute_while<S: EventSource + ?Sized>(
        trace: &S,
        keep_going: impl FnMut() -> bool,
    ) -> Option<GapProfile> {
        let mut x = Extract::new(trace.page_count_hint());
        if !trace.for_each_run_while(keep_going, |run| x.feed(run)) {
            return None;
        }
        Some(x.finish())
    }

    /// References in the trace (every reference is one occurrence).
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Number of occurrences whose backward gap exceeds `tau` — exactly
    /// the WS(τ) fault count.
    pub fn count_gaps_over(&self, tau: u64) -> u64 {
        let idx = self.by_gap.partition_point(|g| g.gap > tau);
        if idx == 0 {
            0
        } else {
            self.gap_cum[idx - 1]
        }
    }

    /// `Σ_occurrences min(span, cap)` — with `cap = τ + 1` this is the
    /// exact WS(τ) resident-set integral `Σ_t ws_size(t)`.
    pub fn span_integral(&self, cap: u64) -> u128 {
        let idx = self.spans.partition_point(|&(s, _)| s <= cap);
        let (below_sum, below_count) = if idx == 0 {
            (0u128, 0u64)
        } else {
            (self.span_cum_sum[idx - 1], self.span_cum_count[idx - 1])
        };
        below_sum + cap as u128 * (self.refs - below_count) as u128
    }

    /// The occurrence groups with backward gap `> tau` (the WS(τ) fault
    /// events), sorted by gap descending.
    pub fn gap_groups_over(&self, tau: u64) -> &[GapGroup] {
        let idx = self.by_gap.partition_point(|g| g.gap > tau);
        &self.by_gap[..idx]
    }

    /// The occurrence groups with forward gap `> tau` (the WS(τ)
    /// age-out candidates: each such occurrence's page, if not
    /// re-referenced, leaves the working set `τ + 1` ticks later),
    /// sorted by gap descending.
    pub fn next_groups_over(&self, tau: u64) -> &[GapGroup] {
        let idx = self.by_next.partition_point(|g| g.gap > tau);
        &self.by_next[..idx]
    }
}

/// Spans below this are counted in a flat array instead of the
/// overflow [`HashMap`] — one indexed add per reference on the hot
/// path. Spans at least this large (rare: a page silent for thousands
/// of ticks) fall through to the map.
const SPAN_SMALL: usize = 1 << 12;

/// The streaming extractor state.
struct Extract {
    /// Reference clock (1-based; directives do not tick it).
    t: u64,
    /// `last[p]` = tick of page `p`'s most recent occurrence (0 =
    /// never). The occurrence at `last[p]` is "open": its forward gap
    /// and span are unresolved until the next occurrence or trace end.
    last: Vec<u64>,
    by_gap: Vec<GapGroup>,
    by_next: Vec<GapGroup>,
    /// `span_small[s]` = occurrences with span `s < SPAN_SMALL`.
    span_small: Vec<u64>,
    /// Overflow span counts (`span ≥ SPAN_SMALL`).
    span_counts: HashMap<u64, u64>,
}

impl Extract {
    fn new(hint: usize) -> Extract {
        Extract {
            t: 0,
            last: vec![0; hint],
            by_gap: Vec::new(),
            by_next: Vec::new(),
            span_small: vec![0; SPAN_SMALL],
            span_counts: HashMap::new(),
        }
    }

    fn feed(&mut self, run: RunRef<'_>) {
        match run {
            RunRef::Run { start, stride, len } => self.run(start, stride, len),
            RunRef::Cycle { body, reps } => self.cycle(body, reps),
            RunRef::Directive(_) => {}
        }
    }

    fn bump_span(&mut self, span: u64, n: u64) {
        if (span as usize) < SPAN_SMALL {
            self.span_small[span as usize] += n;
        } else {
            *self.span_counts.entry(span).or_insert(0) += n;
        }
    }

    /// One reference: resolves the page's previous occurrence (its
    /// forward gap equals this occurrence's backward gap) and opens a
    /// new one.
    fn observe(&mut self, page: u32) {
        self.t += 1;
        let p = page as usize;
        if p >= self.last.len() {
            self.last.resize(p + 1, 0);
        }
        let prev = self.last[p];
        if prev == 0 {
            self.by_gap.push(GapGroup {
                gap: u64::MAX,
                t0: self.t,
                step: 0,
                n: 1,
            });
        } else {
            let g = self.t - prev;
            if g >= 2 {
                self.by_gap.push(GapGroup {
                    gap: g,
                    t0: self.t,
                    step: 0,
                    n: 1,
                });
                self.by_next.push(GapGroup {
                    gap: g,
                    t0: prev,
                    step: 0,
                    n: 1,
                });
            }
            self.bump_span(g, 1);
        }
        self.last[p] = self.t;
    }

    fn run(&mut self, start: PageId, stride: i32, len: u32) {
        if stride == 0 {
            // One page touched `len` times: the first reference settles
            // its backward gap; the re-touches are gap-1 occurrences
            // (never fault, never age out) — a span-histogram bump.
            self.observe(start.0);
            if len > 1 {
                self.bump_span(1, len as u64 - 1);
                self.t += len as u64 - 1;
                self.last[start.0 as usize] = self.t;
            }
        } else {
            // A strided sweep over pages last touched by an identical
            // earlier sweep repeats one backward-gap value for its whole
            // length; batching those stretches keeps the group arrays
            // near the compressed-op count on periodic numerical traces
            // instead of one group per reference.
            let mut p = start.0 as i64;
            let mut pend: Option<GapGroup> = None;
            for _ in 0..len {
                let page = p as u32 as usize;
                p += stride as i64;
                self.t += 1;
                if page >= self.last.len() {
                    self.last.resize(page + 1, 0);
                }
                let prev = self.last[page];
                self.last[page] = self.t;
                if prev == 0 {
                    if let Some(g) = pend.take() {
                        self.push_pair(g);
                    }
                    self.by_gap.push(GapGroup {
                        gap: u64::MAX,
                        t0: self.t,
                        step: 0,
                        n: 1,
                    });
                    continue;
                }
                let g = self.t - prev;
                self.bump_span(g, 1);
                if g < 2 {
                    if let Some(gr) = pend.take() {
                        self.push_pair(gr);
                    }
                    continue;
                }
                match &mut pend {
                    Some(gr) if gr.gap == g && gr.t0 + gr.n == self.t => gr.n += 1,
                    _ => {
                        if let Some(gr) = pend.take() {
                            self.push_pair(gr);
                        }
                        pend = Some(GapGroup {
                            gap: g,
                            t0: self.t,
                            step: 1,
                            n: 1,
                        });
                    }
                }
            }
            if let Some(gr) = pend.take() {
                self.push_pair(gr);
            }
        }
    }

    /// Emits one batched stretch of equal-gap occurrences: the backward
    /// group at the occurrence ticks and the matching forward group at
    /// the (equally consecutive) predecessor ticks.
    fn push_pair(&mut self, g: GapGroup) {
        let step = if g.n == 1 { 0 } else { g.step };
        self.by_gap.push(GapGroup { step, ..g });
        self.by_next.push(GapGroup {
            t0: g.t0 - g.gap,
            step,
            ..g
        });
    }

    /// Processes a folded cycle in `O(period)` regardless of `reps`:
    /// iteration 0 is decoded (its gaps depend on pre-cycle state),
    /// after which every occurrence's backward gap repeats with period
    /// `T` — iterations `1..reps-1` become arithmetic groups.
    fn cycle(&mut self, body: &[Run], reps: u32) {
        if reps < 3 {
            for _ in 0..reps {
                for r in body {
                    self.run(r.start, r.stride, r.len);
                }
            }
            return;
        }
        let cstart = self.t;
        for r in body {
            self.run(r.start, r.stride, r.len);
        }
        let period = self.t - cstart;

        // Per-page occurrence structure of one iteration, as offset
        // runs `(first_offset, len)` — stride-0 stretches stay batched.
        let mut slots: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        let mut off = 0u64;
        for r in body {
            if r.stride == 0 {
                off += 1;
                let e = slots.entry(r.start.0).or_default();
                match e.last_mut() {
                    Some(last) if last.0 + last.1 == off => last.1 += r.len as u64,
                    _ => e.push((off, r.len as u64)),
                }
                off += r.len as u64 - 1;
            } else {
                let mut p = r.start.0 as i64;
                for _ in 0..r.len {
                    off += 1;
                    let e = slots.entry(p as u32).or_default();
                    match e.last_mut() {
                        Some(last) if last.0 + last.1 == off => last.1 += 1,
                        _ => e.push((off, 1)),
                    }
                    p += r.stride as i64;
                }
            }
        }
        // Deterministic page order (HashMap iteration is not).
        let mut pages: Vec<u32> = slots.keys().copied().collect();
        pages.sort_unstable();

        let k_interior = reps as u64 - 2; // iterations 1..=reps-2
        let final_base = cstart + (reps as u64 - 1) * period;
        for page in pages {
            let runs = &slots[&page];
            let k = runs.len();
            let (a_last, l_last) = runs[k - 1];
            let tail = a_last + l_last - 1; // last offset of the page
                                            // Steady backward gap of each run's first element; run 0's
                                            // previous occurrence is the page's tail in the prior
                                            // iteration.
            let gap_of = |i: usize| -> u64 {
                if i == 0 {
                    runs[0].0 + period - tail
                } else {
                    runs[i].0 - (runs[i - 1].0 + runs[i - 1].1 - 1)
                }
            };
            let wrap_gap = gap_of(0);

            // Resolve iteration 0's open occurrence (at the tail): its
            // forward gap is the steady wrap-around gap.
            let t_tail0 = cstart + tail;
            if wrap_gap >= 2 {
                self.by_next.push(GapGroup {
                    gap: wrap_gap,
                    t0: t_tail0,
                    step: 0,
                    n: 1,
                });
            }
            self.bump_span(wrap_gap, 1);

            let total_len: u64 = runs.iter().map(|&(_, l)| l).sum();
            for (i, &(a, l)) in runs.iter().enumerate() {
                let g = gap_of(i);
                let h = gap_of((i + 1) % k); // forward gap of the run's tail
                                             // Backward gaps repeat verbatim for iterations
                                             // 1..=reps-1 (the final iteration included: its
                                             // predecessors are in-cycle).
                if g >= 2 {
                    self.by_gap.push(GapGroup {
                        gap: g,
                        t0: cstart + period + a,
                        step: period,
                        n: reps as u64 - 1,
                    });
                }
                // Forward gaps repeat for iterations 1..=reps-2; the
                // final iteration's tails resolve below.
                if h >= 2 && k_interior > 0 {
                    self.by_next.push(GapGroup {
                        gap: h,
                        t0: cstart + period + a + l - 1,
                        step: period,
                        n: k_interior,
                    });
                }
                if k_interior > 0 {
                    self.bump_span(h, k_interior);
                }
                // Final iteration: runs before the tail resolve against
                // their in-iteration successor; the tail stays open.
                if i + 1 < k {
                    let h_final = gap_of(i + 1);
                    if h_final >= 2 {
                        self.by_next.push(GapGroup {
                            gap: h_final,
                            t0: final_base + a + l - 1,
                            step: 0,
                            n: 1,
                        });
                    }
                    self.bump_span(h_final, 1);
                }
            }
            // Gap-1 in-run re-touches, every steady iteration.
            let retouches = total_len - k as u64;
            if retouches > 0 {
                self.bump_span(1, retouches * (reps as u64 - 1));
            }
            self.last[page as usize] = final_base + tail;
        }
        self.t = cstart + reps as u64 * period;
    }

    fn finish(mut self) -> GapProfile {
        let refs = self.t;
        // Open occurrences: no next reference. Their forward gap is
        // infinite (they always become age-out candidates) and their
        // residency span is clipped by the trace end.
        for p in 0..self.last.len() {
            let tp = self.last[p];
            if tp > 0 {
                self.by_next.push(GapGroup {
                    gap: u64::MAX,
                    t0: tp,
                    step: 0,
                    n: 1,
                });
                self.bump_span(refs - tp + 1, 1);
            }
        }
        let by_gap = sort_groups(self.by_gap, refs);
        let by_next = sort_groups(self.by_next, refs);
        let gap_cum: Vec<u64> = by_gap
            .iter()
            .scan(0u64, |acc, g| {
                *acc += g.n;
                Some(*acc)
            })
            .collect();
        let mut spans: Vec<(u64, u64)> = self.span_counts.into_iter().collect();
        spans.extend(
            self.span_small
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(s, &n)| (s as u64, n)),
        );
        spans.sort_unstable();
        let mut span_cum_count = Vec::with_capacity(spans.len());
        let mut span_cum_sum = Vec::with_capacity(spans.len());
        let (mut cc, mut cs) = (0u64, 0u128);
        for &(s, n) in &spans {
            cc += n;
            cs += s as u128 * n as u128;
            span_cum_count.push(cc);
            span_cum_sum.push(cs);
        }
        debug_assert_eq!(cc, refs, "every reference occurrence has one span");
        GapProfile {
            refs,
            by_gap,
            gap_cum,
            by_next,
            spans,
            span_cum_count,
            span_cum_sum,
        }
    }
}

/// Sorts a group array by gap descending (infinite gaps first), ties
/// broken by extraction order. Real gaps are bounded by the reference
/// count, so when that fits `u32` the sort is a stable two-pass 16-bit
/// LSD radix over inverted keys — far cheaper than a comparison sort
/// of 32-byte structs — with a stable comparison sort as the (huge
/// trace) fallback; both orders are deterministic.
fn sort_groups(v: Vec<GapGroup>, refs: u64) -> Vec<GapGroup> {
    // Small arrays (and the huge-trace escape hatch): a stable
    // comparison sort gives the identical order without the radix
    // passes' counter-array setup, which would dominate tiny traces.
    if v.len() < 4096 || refs >= u32::MAX as u64 {
        let mut v = v;
        v.sort_by_key(|g| std::cmp::Reverse(g.gap));
        return v;
    }
    // `!key` ascending == gap descending; `u64::MAX` clamps to the
    // u32 maximum, which no real gap can reach under the guard above.
    let mut keys: Vec<(u32, u32)> = v
        .iter()
        .enumerate()
        .map(|(i, g)| (!(g.gap.min(u32::MAX as u64) as u32), i as u32))
        .collect();
    let mut tmp = vec![(0u32, 0u32); keys.len()];
    for shift in [0u32, 16] {
        let mut count = vec![0u32; 1 << 16];
        for &(k, _) in &keys {
            count[((k >> shift) & 0xffff) as usize] += 1;
        }
        let mut pos = 0u32;
        for c in count.iter_mut() {
            let n = *c;
            *c = pos;
            pos += n;
        }
        for &(k, i) in &keys {
            let slot = &mut count[((k >> shift) & 0xffff) as usize];
            tmp[*slot as usize] = (k, i);
            *slot += 1;
        }
        std::mem::swap(&mut keys, &mut tmp);
    }
    keys.iter().map(|&(_, i)| v[i as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressedTrace;
    use crate::event::{Event, Trace};
    use crate::synth;

    /// Oracle: per-ref extraction over the flat reference string.
    #[allow(clippy::type_complexity)]
    fn naive(t: &Trace) -> (Vec<(u64, u64)>, Vec<(u64, u64)>, Vec<u64>) {
        // Returns (sorted (gap,time) backward pairs incl. cold=MAX with
        // gap>=2, sorted (gap,time) forward pairs with gap>=2 incl.
        // open=MAX, sorted spans).
        let refs: Vec<u32> = t.refs().map(|p| p.0).collect();
        let r = refs.len() as u64;
        let mut last: HashMap<u32, u64> = HashMap::new();
        let mut back = Vec::new();
        let mut fwd = Vec::new();
        let mut spans = Vec::new();
        for (i, &p) in refs.iter().enumerate() {
            let t = i as u64 + 1;
            match last.get(&p) {
                None => back.push((u64::MAX, t)),
                Some(&tp) => {
                    let g = t - tp;
                    if g >= 2 {
                        back.push((g, t));
                        fwd.push((g, tp));
                    }
                    spans.push(g);
                }
            }
            last.insert(p, t);
        }
        for (_, &tp) in last.iter() {
            fwd.push((u64::MAX, tp));
            spans.push(r - tp + 1);
        }
        back.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        fwd.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        spans.sort_unstable();
        (back, fwd, spans)
    }

    fn expand(groups: &[GapGroup]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for g in groups {
            for t in g.times() {
                out.push((g.gap, t));
            }
        }
        out.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        out
    }

    fn expand_spans(p: &GapProfile) -> Vec<u64> {
        let mut out = Vec::new();
        for &(s, n) in &p.spans {
            for _ in 0..n {
                out.push(s);
            }
        }
        out
    }

    fn check(t: &Trace) {
        let (back, fwd, spans) = naive(t);
        for profile in [
            GapProfile::compute(t),
            GapProfile::compute(&CompressedTrace::from_trace(t)),
        ] {
            assert_eq!(profile.refs(), t.ref_count());
            assert_eq!(expand(&profile.by_gap), back, "backward gaps");
            assert_eq!(expand(&profile.by_next), fwd, "forward gaps");
            assert_eq!(expand_spans(&profile), spans, "spans");
        }
    }

    #[test]
    fn matches_naive_on_random_traces() {
        for seed in 0..8 {
            check(&synth::uniform(5 + (seed as u32 % 40), 2_000, seed));
        }
    }

    #[test]
    fn matches_naive_on_structured_traces() {
        check(&synth::cyclic(12, 40));
        check(&synth::cyclic(1, 100));
        check(&synth::nested_loops(6, 4, 10, 2));
        check(&Trace::default());
        // Long stride-0 spans exercise the batched re-touch path.
        let mut events = Vec::new();
        for i in 0..40u32 {
            for _ in 0..25 {
                events.push(Event::Ref(PageId(i % 3)));
            }
        }
        check(&Trace::from_events(events));
    }

    #[test]
    fn matches_naive_on_folded_cycles() {
        // Build traces whose compressed form contains real COp::Cycle
        // ops with interior stride-0 runs and non-unit strides.
        let mut events = Vec::new();
        for _ in 0..9 {
            for p in [0u32, 2, 4, 6] {
                events.push(Event::Ref(PageId(p)));
            }
            for _ in 0..5 {
                events.push(Event::Ref(PageId(1)));
            }
        }
        events.push(Event::Ref(PageId(99)));
        let t = Trace::from_events(events);
        let c = CompressedTrace::from_trace(&t);
        assert!(
            c.ops()
                .iter()
                .any(|op| matches!(op, crate::compress::COp::Cycle { .. })),
            "fold produced a cycle: {:?}",
            c.ops()
        );
        check(&t);
    }

    #[test]
    fn query_helpers_agree_with_raw_data() {
        let t = synth::uniform(16, 3_000, 11);
        let p = GapProfile::compute(&t);
        for tau in [1u64, 2, 5, 17, 100, 5_000] {
            let faults: u64 = p.by_gap.iter().filter(|g| g.gap > tau).map(|g| g.n).sum();
            assert_eq!(p.count_gaps_over(tau), faults, "tau={tau}");
            let integral: u128 = p
                .spans
                .iter()
                .map(|&(s, n)| s.min(tau + 1) as u128 * n as u128)
                .sum();
            assert_eq!(p.span_integral(tau + 1), integral, "tau={tau}");
            assert_eq!(
                p.gap_groups_over(tau).iter().map(|g| g.n).sum::<u64>(),
                faults
            );
            assert!(p.next_groups_over(tau).iter().all(|g| g.gap > tau));
        }
    }
}
