//! Reference-trace generation for the CDMM reproduction.
//!
//! The paper's evaluation is trace-driven: "Traces of array references
//! were generated for 9 numerical programs written in FORTRAN" (Section
//! 5). This crate turns checked mini-FORTRAN programs into exactly such
//! traces:
//!
//! - [`layout`] — maps each declared array onto a page-aligned region of
//!   the program's virtual space (column-major, like FORTRAN).
//! - [`event`] — the trace alphabet: page references plus the runtime
//!   side of the memory directives.
//! - [`interp`] — an interpreter that executes the program with real
//!   floating-point arithmetic and emits one [`event::Event::Ref`] per
//!   array-element access (constants and instructions are assumed
//!   memory-resident, as in the paper).
//! - [`gaps`] — one-pass inter-reference gap extraction over the
//!   compressed run/cycle structure, the substrate for answering every
//!   WS window from a single trace pass.
//! - [`synth`] — synthetic reference-string generators used by the policy
//!   test suites (cyclic sweeps, phased localities, uniform noise).
//! - [`stats`] — simple trace statistics.
//! - [`validate`] — directive-stream well-formedness checking and the
//!   seeded [`DirectiveFuzzer`] behind the chaos test suite.
//! - [`tenant`] — seeded per-tenant perturbation ([`TenantJitter`])
//!   used by the fleet scheduler to clone workloads into distinct
//!   tenants.
//! - [`cancel`] — the [`CancelToken`] polled by both the interpreter
//!   (so deadlines bound trace generation) and the simulate drivers.
//!
//! # Examples
//!
//! ```
//! use cdmm_locality::PageGeometry;
//! use cdmm_trace::trace_program;
//!
//! let src = "
//! PROGRAM DOT
//! PARAMETER (N = 256)
//! DIMENSION X(N), Y(N)
//! S = 0.0
//! DO 10 I = 1, N
//!   S = S + X(I) * Y(I)
//! 10 CONTINUE
//! END
//! ";
//! let trace = trace_program(src, PageGeometry::PAPER).unwrap();
//! // 2 array references per iteration, 256 iterations.
//! assert_eq!(trace.ref_count(), 512);
//! ```

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cancel;
pub mod compress;
pub mod event;
pub mod gaps;
pub mod interp;
pub mod layout;
pub mod stats;
pub mod synth;
pub mod tenant;
pub mod validate;

pub use cancel::CancelToken;
pub use compress::{COp, CompressedTrace, TraceBuilder};
pub use event::{Event, EventRef, EventSource, PageId, PageRange, Run, RunRef, Trace};
pub use gaps::{GapGroup, GapProfile};
pub use interp::{InterpConfig, InterpError, Interpreter, ProgramState};
pub use layout::MemoryLayout;
pub use stats::TraceStats;
pub use tenant::TenantJitter;
pub use validate::{DirectiveFuzzer, FaultKind, FuzzReport, Injection, Violation};

use cdmm_locality::PageGeometry;

/// Parses, checks, lays out and executes a program, returning its trace.
///
/// Directives present in the source (e.g. inserted by
/// [`cdmm_locality::instrument`]) become directive events in the trace.
pub fn trace_program(src: &str, geometry: PageGeometry) -> Result<Trace, InterpError> {
    Ok(trace_program_with_state(src, geometry)?.0)
}

/// [`trace_program`] in run-length-compressed form: the interpreter
/// streams references straight into a [`TraceBuilder`], so the flat
/// `Vec<Event>` is never materialized.
pub fn trace_program_compressed(
    src: &str,
    geometry: PageGeometry,
) -> Result<CompressedTrace, InterpError> {
    Ok(trace_program_compressed_with_state(src, geometry)?.0)
}

/// [`trace_program_compressed`] under a [`CancelToken`]: the
/// interpreter polls the token every [`interp::POLL_INTERVAL`] emitted
/// events and fails with [`InterpError::Cancelled`] when it fires, so a
/// deadline bounds trace generation on huge inline sources instead of
/// only kicking in once simulation starts.
pub fn trace_program_compressed_cancellable(
    src: &str,
    geometry: PageGeometry,
    token: &CancelToken,
) -> Result<CompressedTrace, InterpError> {
    let mut program = cdmm_lang::parse(src).map_err(InterpError::Lang)?;
    let symbols = cdmm_lang::analyze(&mut program).map_err(InterpError::Lang)?;
    let layout = MemoryLayout::new(&symbols, geometry);
    Interpreter::new(&program, &symbols, layout)
        .with_cancel(token.clone())
        .run_compressed()
}

/// Like [`trace_program_compressed`], but also returns the final
/// variable state for numerical validation.
pub fn trace_program_compressed_with_state(
    src: &str,
    geometry: PageGeometry,
) -> Result<(CompressedTrace, ProgramState), InterpError> {
    let mut program = cdmm_lang::parse(src).map_err(InterpError::Lang)?;
    let symbols = cdmm_lang::analyze(&mut program).map_err(InterpError::Lang)?;
    let layout = MemoryLayout::new(&symbols, geometry);
    Interpreter::new(&program, &symbols, layout).run_compressed_with_state()
}

/// Like [`trace_program`], but also returns the final variable state so
/// callers can check that the traced computation is numerically sound.
pub fn trace_program_with_state(
    src: &str,
    geometry: PageGeometry,
) -> Result<(Trace, ProgramState), InterpError> {
    let mut program = cdmm_lang::parse(src).map_err(InterpError::Lang)?;
    let symbols = cdmm_lang::analyze(&mut program).map_err(InterpError::Lang)?;
    let layout = MemoryLayout::new(&symbols, geometry);
    Interpreter::new(&program, &symbols, layout).run_with_state()
}
