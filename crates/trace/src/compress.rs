//! Run-length/stride-compressed reference traces.
//!
//! The nine workloads are numerical inner loops, so their reference
//! strings are dominated by constant-stride runs (column-major sweeps
//! are stride 1 at page granularity for long stretches, with short
//! stride jumps between columns). [`CompressedTrace`] stores the trace
//! as `(start, stride, len)` runs plus verbatim directive events:
//! typically one op per tens-to-thousands of references, so a whole
//! trace fits in cache and the simulator streams it back as a counted
//! loop instead of walking a `Vec<Event>` of ~32-byte enums.
//!
//! [`TraceBuilder`] builds the compressed form incrementally — the
//! interpreter pushes one reference at a time and never materializes
//! the flat event vector — and [`EventSource`] lets `simulate` and the
//! stack-distance profiler consume either representation unchanged.

use crate::event::{Event, EventRef, EventSource, PageId, Run, RunRef, Trace};

/// One compressed trace operation.
#[derive(Debug, Clone, PartialEq)]
pub enum COp {
    /// `len` references `start, start+stride, start+2·stride, …`.
    /// Every decoded page is a valid `u32` by construction.
    Run {
        /// First page of the run.
        start: u32,
        /// Per-reference page delta (0 for repeated touches).
        stride: i32,
        /// Number of references (≥ 1).
        len: u32,
    },
    /// The run sequence `body` repeated `reps ≥ 2` times back-to-back.
    /// Numerical loops emit the same short run pattern once per
    /// iteration (`A(I)+B(I)` alternates two or three pages at page
    /// granularity), so the greedy run coalescer above produces long
    /// stretches of *identical* run ops; [`TraceBuilder::finish`] folds
    /// those into one `Cycle`, which is what lets the policy kernels
    /// batch whole iterations once a fault-free steady state is
    /// reached. Bodies never contain directives.
    Cycle {
        /// One iteration's runs, in reference order.
        body: Box<[Run]>,
        /// How many times the body repeats (≥ 2).
        reps: u32,
    },
    /// A directive event, stored verbatim (never `Event::Ref`).
    Dir(Event),
}

/// A complete trace in run-length-compressed form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedTrace {
    ops: Vec<COp>,
    refs: u64,
    virtual_pages: u32,
}

impl CompressedTrace {
    /// Compresses an existing flat trace.
    pub fn from_trace(trace: &Trace) -> CompressedTrace {
        let mut b = TraceBuilder::new();
        for e in &trace.events {
            match e {
                Event::Ref(p) => b.push_ref(*p),
                other => b.push_directive(other.clone()),
            }
        }
        b.finish(trace.virtual_pages)
    }

    /// Decompresses back to the flat representation (for consumers that
    /// need random access, e.g. the multiprogramming driver).
    pub fn to_trace(&self) -> Trace {
        let mut events = Vec::with_capacity(self.refs as usize + self.directive_count() as usize);
        self.for_each_event(|e| match e {
            EventRef::Ref(p) => events.push(Event::Ref(p)),
            EventRef::Directive(d) => events.push(d.clone()),
        });
        Trace {
            events,
            virtual_pages: self.virtual_pages,
        }
    }

    /// The compressed operations, in execution order.
    pub fn ops(&self) -> &[COp] {
        &self.ops
    }

    /// Number of compressed operations (the compression denominator:
    /// `ref_count + directive_count` over `op_count`).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of page references.
    pub fn ref_count(&self) -> u64 {
        self.refs
    }

    /// Number of directive events.
    pub fn directive_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, COp::Dir(_)))
            .count() as u64
    }

    /// Total virtual pages of the traced program (0 when unknown).
    pub fn virtual_pages(&self) -> u32 {
        self.virtual_pages
    }

    /// Number of distinct pages referenced.
    pub fn distinct_pages(&self) -> u32 {
        let mut seen = std::collections::HashSet::new();
        self.for_each_ref(|p| {
            seen.insert(p);
        });
        seen.len() as u32
    }

    /// Iterates over the decoded page references, in order.
    pub fn iter_refs(&self) -> RefIter<'_> {
        RefIter {
            ops: &self.ops,
            next_op: 0,
            cur: 0,
            stride: 0,
            remaining: 0,
            cycle: None,
        }
    }
}

impl EventSource for CompressedTrace {
    fn for_each_event<F: FnMut(EventRef<'_>)>(&self, mut f: F) {
        for op in &self.ops {
            match op {
                COp::Run { start, stride, len } => {
                    let mut p = *start as i64;
                    let stride = *stride as i64;
                    for _ in 0..*len {
                        f(EventRef::Ref(PageId(p as u32)));
                        p += stride;
                    }
                }
                COp::Cycle { body, reps } => {
                    for _ in 0..*reps {
                        for r in body.iter() {
                            r.for_each_page(|p| f(EventRef::Ref(p)));
                        }
                    }
                }
                COp::Dir(d) => f(EventRef::Directive(d)),
            }
        }
    }

    fn for_each_event_while<K, F>(&self, mut keep_going: K, mut f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(EventRef<'_>),
    {
        // One poll per op — or per cycle iteration, so a folded loop
        // with a huge repetition count cannot starve the poll — while
        // runs decode with the same tight counted loop as
        // `for_each_event`. Cancellation costs O(ops + iterations), not
        // O(references).
        for op in &self.ops {
            if !keep_going() {
                return false;
            }
            match op {
                COp::Run { start, stride, len } => {
                    let mut p = *start as i64;
                    let stride = *stride as i64;
                    for _ in 0..*len {
                        f(EventRef::Ref(PageId(p as u32)));
                        p += stride;
                    }
                }
                COp::Cycle { body, reps } => {
                    for i in 0..*reps {
                        if i > 0 && !keep_going() {
                            return false;
                        }
                        for r in body.iter() {
                            r.for_each_page(|p| f(EventRef::Ref(p)));
                        }
                    }
                }
                COp::Dir(d) => f(EventRef::Directive(d)),
            }
        }
        true
    }

    fn for_each_run<F: FnMut(RunRef<'_>)>(&self, mut f: F) {
        // Whole `COp::Run`s and `COp::Cycle`s, no decode loop at all:
        // this is the payoff of storing the trace compressed.
        // Directives were flushed into their own ops by `TraceBuilder`,
        // so runs never straddle them and cycle bodies never contain
        // them.
        for op in &self.ops {
            match op {
                COp::Run { start, stride, len } => f(RunRef::Run {
                    start: PageId(*start),
                    stride: *stride,
                    len: *len,
                }),
                COp::Cycle { body, reps } => f(RunRef::Cycle { body, reps: *reps }),
                COp::Dir(d) => f(RunRef::Directive(d)),
            }
        }
    }

    fn for_each_run_while<K, F>(&self, mut keep_going: K, mut f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(RunRef<'_>),
    {
        // Same poll cadence as `for_each_run`: once per op. A cycle is
        // one op — its kernel-side cost is O(body) once steady, so the
        // poll interval stays bounded.
        for op in &self.ops {
            if !keep_going() {
                return false;
            }
            match op {
                COp::Run { start, stride, len } => f(RunRef::Run {
                    start: PageId(*start),
                    stride: *stride,
                    len: *len,
                }),
                COp::Cycle { body, reps } => f(RunRef::Cycle { body, reps: *reps }),
                COp::Dir(d) => f(RunRef::Directive(d)),
            }
        }
        true
    }

    fn for_each_ref<F: FnMut(PageId)>(&self, mut f: F) {
        for op in &self.ops {
            match op {
                COp::Run { start, stride, len } => {
                    let mut p = *start as i64;
                    let stride = *stride as i64;
                    for _ in 0..*len {
                        f(PageId(p as u32));
                        p += stride;
                    }
                }
                COp::Cycle { body, reps } => {
                    for _ in 0..*reps {
                        for r in body.iter() {
                            r.for_each_page(&mut f);
                        }
                    }
                }
                COp::Dir(_) => {}
            }
        }
    }

    fn ref_count(&self) -> u64 {
        self.refs
    }

    fn page_count_hint(&self) -> usize {
        if self.virtual_pages > 0 {
            self.virtual_pages as usize
        } else {
            fn run_hint(start: u32, stride: i32, len: u32) -> usize {
                let end = start as i64 + stride as i64 * (len as i64 - 1);
                (start as i64).max(end) as usize + 1
            }
            self.ops
                .iter()
                .filter_map(|op| match op {
                    COp::Run { start, stride, len } => Some(run_hint(*start, *stride, *len)),
                    COp::Cycle { body, .. } => body
                        .iter()
                        .map(|r| run_hint(r.start.0, r.stride, r.len))
                        .max(),
                    COp::Dir(_) => None,
                })
                .max()
                .unwrap_or(0)
        }
    }
}

/// External iterator over a compressed trace's page references.
#[derive(Debug, Clone)]
pub struct RefIter<'a> {
    ops: &'a [COp],
    next_op: usize,
    cur: i64,
    stride: i64,
    remaining: u32,
    /// In-flight cycle: its body, the next body run to decode, and how
    /// many whole iterations remain after the current one.
    cycle: Option<(&'a [Run], usize, u32)>,
}

impl<'a> RefIter<'a> {
    /// Arms the decode state for one constant-stride run.
    fn load_run(&mut self, start: u32, stride: i32, len: u32) {
        self.cur = start as i64;
        self.stride = stride as i64;
        self.remaining = len;
    }
}

impl Iterator for RefIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        while self.remaining == 0 {
            if let Some((body, next_run, reps_left)) = self.cycle {
                if next_run < body.len() {
                    let r = body[next_run];
                    self.load_run(r.start.0, r.stride, r.len);
                    self.cycle = Some((body, next_run + 1, reps_left));
                    continue;
                }
                if reps_left > 0 {
                    self.cycle = Some((body, 0, reps_left - 1));
                    continue;
                }
                self.cycle = None;
            }
            let op = self.ops.get(self.next_op)?;
            self.next_op += 1;
            match op {
                COp::Run { start, stride, len } => self.load_run(*start, *stride, *len),
                COp::Cycle { body, reps } => self.cycle = Some((body, 0, *reps - 1)),
                COp::Dir(_) => {}
            }
        }
        let page = PageId(self.cur as u32);
        self.cur += self.stride;
        self.remaining -= 1;
        Some(page)
    }
}

/// The open run a [`TraceBuilder`] is extending.
#[derive(Debug, Clone, Copy)]
struct Pending {
    start: u32,
    stride: i32,
    len: u32,
    last: u32,
}

/// Streaming constructor for [`CompressedTrace`]: push references and
/// directives in execution order, stride runs coalesce greedily.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    ops: Vec<COp>,
    refs: u64,
    pending: Option<Pending>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Logical events pushed so far (references + directives), for
    /// runaway-trace caps.
    pub fn logical_len(&self) -> u64 {
        self.refs
            + self
                .ops
                .iter()
                .filter(|op| matches!(op, COp::Dir(_)))
                .count() as u64
    }

    fn flush(&mut self) {
        if let Some(run) = self.pending.take() {
            self.ops.push(COp::Run {
                start: run.start,
                stride: run.stride,
                len: run.len,
            });
        }
    }

    /// Appends one page reference.
    #[inline]
    pub fn push_ref(&mut self, page: PageId) {
        let p = page.0;
        self.refs += 1;
        match &mut self.pending {
            None => {
                self.pending = Some(Pending {
                    start: p,
                    stride: 0,
                    len: 1,
                    last: p,
                });
            }
            Some(run) => {
                let delta = p as i64 - run.last as i64;
                if run.len == 1 {
                    if let Ok(s) = i32::try_from(delta) {
                        run.stride = s;
                        run.len = 2;
                        run.last = p;
                        return;
                    }
                } else if delta == run.stride as i64 && run.len < u32::MAX {
                    run.len += 1;
                    run.last = p;
                    return;
                }
                self.flush();
                self.pending = Some(Pending {
                    start: p,
                    stride: 0,
                    len: 1,
                    last: p,
                });
            }
        }
    }

    /// Appends one directive event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is an `Event::Ref` (use [`Self::push_ref`]).
    pub fn push_directive(&mut self, event: Event) {
        assert!(
            !matches!(event, Event::Ref(_)),
            "push references through push_ref"
        );
        self.flush();
        self.ops.push(COp::Dir(event));
    }

    /// Seals the builder into a trace over `virtual_pages` pages,
    /// folding repeated run windows into [`COp::Cycle`]s.
    pub fn finish(mut self, virtual_pages: u32) -> CompressedTrace {
        self.flush();
        CompressedTrace {
            ops: fold_cycles(self.ops),
            refs: self.refs,
            virtual_pages,
        }
    }
}

/// Longest run window a cycle body may span. Numerical loop bodies at
/// page granularity rarely exceed a handful of runs per iteration;
/// keeping the window short bounds the fold pass at `O(MAX · ops)`.
const MAX_CYCLE_BODY: usize = 8;

/// Minimum repetition count worth folding: below three iterations the
/// policy kernels cannot skip anything (they need warm-up iterations to
/// prove a steady state), so short repeats stay as plain runs.
const MIN_CYCLE_REPS: u32 = 3;

/// Folds consecutive repetitions of an identical run window into
/// [`COp::Cycle`] ops. The greedy coalescer already merged maximal
/// constant-stride bursts, so a loop iterating over interleaved arrays
/// leaves a fingerprint of *identical* short run ops, one group per
/// iteration — exactly what this pass detects. Decoding a `Cycle`
/// reproduces the folded ops verbatim, so the event stream is
/// unchanged. Directives are never folded.
fn fold_cycles(ops: Vec<COp>) -> Vec<COp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        // Pick the window size maximizing the references covered.
        let mut best: Option<(usize, u32, u64)> = None; // (w, reps, refs)
        for w in 1..=MAX_CYCLE_BODY {
            if i + 2 * w > ops.len() {
                break;
            }
            if !matches!(ops[i + w - 1], COp::Run { .. }) {
                // A directive (or an already-folded cycle) at the window
                // edge blocks this and every wider window.
                break;
            }
            let mut reps = 1u32;
            let mut j = i + w;
            while j + w <= ops.len() && ops[j..j + w] == ops[i..i + w] {
                reps += 1;
                j += w;
            }
            if reps >= MIN_CYCLE_REPS {
                let body_refs: u64 = ops[i..i + w]
                    .iter()
                    .map(|op| match op {
                        COp::Run { len, .. } => *len as u64,
                        _ => 0,
                    })
                    .sum();
                let covered = body_refs * reps as u64;
                if best.is_none_or(|(_, _, b)| covered > b) {
                    best = Some((w, reps, covered));
                }
            }
        }
        match best {
            Some((w, reps, _)) => {
                let body: Box<[Run]> = ops[i..i + w]
                    .iter()
                    .map(|op| match op {
                        COp::Run { start, stride, len } => Run {
                            start: PageId(*start),
                            stride: *stride,
                            len: *len,
                        },
                        _ => unreachable!("cycle windows contain only runs"),
                    })
                    .collect();
                out.push(COp::Cycle { body, reps });
                i += w * reps as usize;
            }
            None => {
                out.push(ops[i].clone());
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn roundtrip(t: &Trace) -> CompressedTrace {
        let c = CompressedTrace::from_trace(t);
        assert_eq!(c.ref_count(), Trace::ref_count(t));
        assert_eq!(c.directive_count(), t.directive_count());
        assert_eq!(c.virtual_pages(), t.virtual_pages);
        assert_eq!(&c.to_trace(), t, "decompression is lossless");
        let via_iter: Vec<PageId> = c.iter_refs().collect();
        let direct: Vec<PageId> = t.refs().collect();
        assert_eq!(via_iter, direct, "iter_refs matches the flat refs");
        c
    }

    #[test]
    fn stride_one_sweep_compresses_to_one_op_per_cycle() {
        let t = synth::cyclic(64, 10);
        let c = roundtrip(&t);
        // Ten identical stride-1 sweeps fold into a single cycle op.
        assert_eq!(c.op_count(), 1, "one cycle op for the whole loop");
        match &c.ops()[0] {
            COp::Cycle { body, reps } => {
                assert_eq!(*reps, 10);
                assert_eq!(
                    **body,
                    [Run {
                        start: PageId(0),
                        stride: 1,
                        len: 64
                    }]
                );
            }
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn interleaved_loop_folds_into_a_cycle() {
        // A(I)+B(I)-style alternation: pages 0,9,0,9,… — each iteration
        // is one stride-9 run of length 2, identical every time.
        let refs: Vec<u32> = (0..12).map(|i| if i % 2 == 0 { 0 } else { 9 }).collect();
        let t = Trace::from_events(refs.iter().map(|&p| Event::Ref(PageId(p))).collect());
        let c = roundtrip(&t);
        assert_eq!(c.op_count(), 1, "{:?}", c.ops());
        assert!(matches!(&c.ops()[0], COp::Cycle { reps: 6, .. }));
    }

    #[test]
    fn two_repeats_stay_as_plain_runs() {
        // Below MIN_CYCLE_REPS the fold would buy the kernels nothing.
        let refs: Vec<u32> = vec![0, 9, 0, 9];
        let t = Trace::from_events(refs.iter().map(|&p| Event::Ref(PageId(p))).collect());
        let c = roundtrip(&t);
        assert!(
            c.ops().iter().all(|op| matches!(op, COp::Run { .. })),
            "{:?}",
            c.ops()
        );
    }

    #[test]
    fn directives_are_never_folded() {
        // LOCK between iterations: the repeated window spans a
        // directive, so nothing folds even though the runs repeat.
        let mut events = Vec::new();
        for _ in 0..5 {
            events.push(Event::Ref(PageId(0)));
            events.push(Event::Ref(PageId(9)));
            events.push(Event::Unlock { ranges: vec![] });
        }
        let t = Trace::from_events(events);
        let c = roundtrip(&t);
        assert_eq!(c.directive_count(), 5);
        assert!(c.ops().iter().all(|op| !matches!(op, COp::Cycle { .. })));
    }

    #[test]
    fn wider_window_wins_when_it_covers_more() {
        // Iterations of two runs each: [0,1,2][50,40,30] × 4. A width-1
        // window never repeats consecutively; width 2 covers all refs.
        let mut refs: Vec<u32> = Vec::new();
        for _ in 0..4 {
            refs.extend([0, 1, 2, 50, 40, 30]);
        }
        let t = Trace::from_events(refs.iter().map(|&p| Event::Ref(PageId(p))).collect());
        let c = roundtrip(&t);
        match &c.ops()[0] {
            COp::Cycle { body, reps } => {
                assert_eq!(*reps, 4);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn constant_page_and_negative_strides_coalesce() {
        let refs: Vec<u32> = vec![5, 5, 5, 9, 7, 5, 3, 100];
        let t = Trace::from_events(refs.iter().map(|&p| Event::Ref(PageId(p))).collect());
        let c = roundtrip(&t);
        // [5×3 stride 0] [9,7,5,3 stride −2] [100]
        assert_eq!(c.op_count(), 3, "{:?}", c.ops());
    }

    #[test]
    fn directives_break_runs_and_survive_verbatim() {
        use cdmm_lang::ast::AllocArg;
        let t = Trace::from_events(vec![
            Event::Ref(PageId(0)),
            Event::Ref(PageId(1)),
            Event::Alloc(vec![AllocArg { pi: 2, pages: 3 }]),
            Event::Ref(PageId(2)),
            Event::Ref(PageId(3)),
            Event::Unlock { ranges: vec![] },
        ]);
        let c = roundtrip(&t);
        assert_eq!(c.op_count(), 4);
        assert_eq!(c.directive_count(), 2);
    }

    #[test]
    fn random_traces_roundtrip() {
        for seed in 0..6 {
            roundtrip(&synth::uniform(40, 2_000, seed));
        }
        roundtrip(&synth::nested_loops(5, 3, 9, 2));
        roundtrip(&Trace::default());
    }

    #[test]
    fn builder_streams_like_from_trace() {
        let t = synth::nested_loops(4, 2, 8, 3);
        let mut b = TraceBuilder::new();
        for p in t.refs() {
            b.push_ref(p);
        }
        assert_eq!(b.logical_len(), Trace::ref_count(&t));
        let c = b.finish(t.virtual_pages);
        assert_eq!(c, CompressedTrace::from_trace(&t));
    }

    /// Decodes a [`RunRef`] stream back to flat events, for comparing
    /// run iteration against event iteration.
    fn decode_runs<S: EventSource>(src: &S) -> Vec<Event> {
        let mut out = Vec::new();
        src.for_each_run(|r| match r {
            RunRef::Run { start, stride, len } => {
                let mut p = start.0 as i64;
                for _ in 0..len {
                    out.push(Event::Ref(PageId(p as u32)));
                    p += stride as i64;
                }
            }
            RunRef::Cycle { body, reps } => {
                for _ in 0..reps {
                    for r in body {
                        r.for_each_page(|p| out.push(Event::Ref(p)));
                    }
                }
            }
            RunRef::Directive(d) => out.push(d.clone()),
        });
        out
    }

    #[test]
    fn run_iteration_decodes_to_the_event_stream() {
        for t in [
            synth::uniform(40, 2_000, 3),
            synth::nested_loops(5, 3, 9, 2),
            synth::cyclic(64, 10),
            Trace::default(),
        ] {
            let c = CompressedTrace::from_trace(&t);
            assert_eq!(decode_runs(&c), t.events, "compressed runs decode");
            // The default (flat-trace) implementation degrades to len-1
            // runs but must decode to the same stream.
            assert_eq!(decode_runs(&t), t.events, "flat runs decode");
            let whole = c.for_each_run_while(|| true, |_| {});
            assert!(whole, "idle keep_going consumes the source");
        }
    }

    #[test]
    fn run_while_polls_once_per_op() {
        let t = synth::cyclic(64, 10);
        let c = CompressedTrace::from_trace(&t);
        let mut polls = 0u32;
        let mut runs = 0u32;
        let whole = c.for_each_run_while(
            || {
                polls += 1;
                true
            },
            |_| runs += 1,
        );
        assert!(whole);
        assert_eq!(runs, c.op_count() as u32);
        assert_eq!(polls, c.op_count() as u32, "one poll per op, not per ref");

        // A dead token stops before the first run is delivered.
        let mut delivered = 0u32;
        let whole = c.for_each_run_while(|| false, |_| delivered += 1);
        assert!(!whole);
        assert_eq!(delivered, 0);
    }

    #[test]
    fn distinct_pages_and_hints_match() {
        let t = synth::uniform(23, 500, 9);
        let c = CompressedTrace::from_trace(&t);
        assert_eq!(c.distinct_pages(), t.distinct_pages());
        assert_eq!(c.page_count_hint(), 23);
    }
}
