//! Run-length/stride-compressed reference traces.
//!
//! The nine workloads are numerical inner loops, so their reference
//! strings are dominated by constant-stride runs (column-major sweeps
//! are stride 1 at page granularity for long stretches, with short
//! stride jumps between columns). [`CompressedTrace`] stores the trace
//! as `(start, stride, len)` runs plus verbatim directive events:
//! typically one op per tens-to-thousands of references, so a whole
//! trace fits in cache and the simulator streams it back as a counted
//! loop instead of walking a `Vec<Event>` of ~32-byte enums.
//!
//! [`TraceBuilder`] builds the compressed form incrementally — the
//! interpreter pushes one reference at a time and never materializes
//! the flat event vector — and [`EventSource`] lets `simulate` and the
//! stack-distance profiler consume either representation unchanged.

use crate::event::{Event, EventRef, EventSource, PageId, Trace};

/// One compressed trace operation.
#[derive(Debug, Clone, PartialEq)]
pub enum COp {
    /// `len` references `start, start+stride, start+2·stride, …`.
    /// Every decoded page is a valid `u32` by construction.
    Run {
        /// First page of the run.
        start: u32,
        /// Per-reference page delta (0 for repeated touches).
        stride: i32,
        /// Number of references (≥ 1).
        len: u32,
    },
    /// A directive event, stored verbatim (never `Event::Ref`).
    Dir(Event),
}

/// A complete trace in run-length-compressed form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedTrace {
    ops: Vec<COp>,
    refs: u64,
    virtual_pages: u32,
}

impl CompressedTrace {
    /// Compresses an existing flat trace.
    pub fn from_trace(trace: &Trace) -> CompressedTrace {
        let mut b = TraceBuilder::new();
        for e in &trace.events {
            match e {
                Event::Ref(p) => b.push_ref(*p),
                other => b.push_directive(other.clone()),
            }
        }
        b.finish(trace.virtual_pages)
    }

    /// Decompresses back to the flat representation (for consumers that
    /// need random access, e.g. the multiprogramming driver).
    pub fn to_trace(&self) -> Trace {
        let mut events = Vec::with_capacity(self.refs as usize + self.directive_count() as usize);
        self.for_each_event(|e| match e {
            EventRef::Ref(p) => events.push(Event::Ref(p)),
            EventRef::Directive(d) => events.push(d.clone()),
        });
        Trace {
            events,
            virtual_pages: self.virtual_pages,
        }
    }

    /// The compressed operations, in execution order.
    pub fn ops(&self) -> &[COp] {
        &self.ops
    }

    /// Number of compressed operations (the compression denominator:
    /// `ref_count + directive_count` over `op_count`).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of page references.
    pub fn ref_count(&self) -> u64 {
        self.refs
    }

    /// Number of directive events.
    pub fn directive_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, COp::Dir(_)))
            .count() as u64
    }

    /// Total virtual pages of the traced program (0 when unknown).
    pub fn virtual_pages(&self) -> u32 {
        self.virtual_pages
    }

    /// Number of distinct pages referenced.
    pub fn distinct_pages(&self) -> u32 {
        let mut seen = std::collections::HashSet::new();
        self.for_each_ref(|p| {
            seen.insert(p);
        });
        seen.len() as u32
    }

    /// Iterates over the decoded page references, in order.
    pub fn iter_refs(&self) -> RefIter<'_> {
        RefIter {
            ops: &self.ops,
            next_op: 0,
            cur: 0,
            stride: 0,
            remaining: 0,
        }
    }
}

impl EventSource for CompressedTrace {
    fn for_each_event<F: FnMut(EventRef<'_>)>(&self, mut f: F) {
        for op in &self.ops {
            match op {
                COp::Run { start, stride, len } => {
                    let mut p = *start as i64;
                    let stride = *stride as i64;
                    for _ in 0..*len {
                        f(EventRef::Ref(PageId(p as u32)));
                        p += stride;
                    }
                }
                COp::Dir(d) => f(EventRef::Directive(d)),
            }
        }
    }

    fn for_each_event_while<K, F>(&self, mut keep_going: K, mut f: F) -> bool
    where
        K: FnMut() -> bool,
        F: FnMut(EventRef<'_>),
    {
        // One poll per op: a run decodes with the same tight counted
        // loop as `for_each_event`, so cancellation costs O(ops), not
        // O(references).
        for op in &self.ops {
            if !keep_going() {
                return false;
            }
            match op {
                COp::Run { start, stride, len } => {
                    let mut p = *start as i64;
                    let stride = *stride as i64;
                    for _ in 0..*len {
                        f(EventRef::Ref(PageId(p as u32)));
                        p += stride;
                    }
                }
                COp::Dir(d) => f(EventRef::Directive(d)),
            }
        }
        true
    }

    fn for_each_ref<F: FnMut(PageId)>(&self, mut f: F) {
        for op in &self.ops {
            if let COp::Run { start, stride, len } = op {
                let mut p = *start as i64;
                let stride = *stride as i64;
                for _ in 0..*len {
                    f(PageId(p as u32));
                    p += stride;
                }
            }
        }
    }

    fn ref_count(&self) -> u64 {
        self.refs
    }

    fn page_count_hint(&self) -> usize {
        if self.virtual_pages > 0 {
            self.virtual_pages as usize
        } else {
            self.ops
                .iter()
                .filter_map(|op| match op {
                    COp::Run { start, stride, len } => {
                        let end = *start as i64 + *stride as i64 * (*len as i64 - 1);
                        Some((*start as i64).max(end) as usize + 1)
                    }
                    COp::Dir(_) => None,
                })
                .max()
                .unwrap_or(0)
        }
    }
}

/// External iterator over a compressed trace's page references.
#[derive(Debug, Clone)]
pub struct RefIter<'a> {
    ops: &'a [COp],
    next_op: usize,
    cur: i64,
    stride: i64,
    remaining: u32,
}

impl Iterator for RefIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        while self.remaining == 0 {
            let op = self.ops.get(self.next_op)?;
            self.next_op += 1;
            if let COp::Run { start, stride, len } = op {
                self.cur = *start as i64;
                self.stride = *stride as i64;
                self.remaining = *len;
            }
        }
        let page = PageId(self.cur as u32);
        self.cur += self.stride;
        self.remaining -= 1;
        Some(page)
    }
}

/// The open run a [`TraceBuilder`] is extending.
#[derive(Debug, Clone, Copy)]
struct Pending {
    start: u32,
    stride: i32,
    len: u32,
    last: u32,
}

/// Streaming constructor for [`CompressedTrace`]: push references and
/// directives in execution order, stride runs coalesce greedily.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    ops: Vec<COp>,
    refs: u64,
    pending: Option<Pending>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Logical events pushed so far (references + directives), for
    /// runaway-trace caps.
    pub fn logical_len(&self) -> u64 {
        self.refs
            + self
                .ops
                .iter()
                .filter(|op| matches!(op, COp::Dir(_)))
                .count() as u64
    }

    fn flush(&mut self) {
        if let Some(run) = self.pending.take() {
            self.ops.push(COp::Run {
                start: run.start,
                stride: run.stride,
                len: run.len,
            });
        }
    }

    /// Appends one page reference.
    #[inline]
    pub fn push_ref(&mut self, page: PageId) {
        let p = page.0;
        self.refs += 1;
        match &mut self.pending {
            None => {
                self.pending = Some(Pending {
                    start: p,
                    stride: 0,
                    len: 1,
                    last: p,
                });
            }
            Some(run) => {
                let delta = p as i64 - run.last as i64;
                if run.len == 1 {
                    if let Ok(s) = i32::try_from(delta) {
                        run.stride = s;
                        run.len = 2;
                        run.last = p;
                        return;
                    }
                } else if delta == run.stride as i64 && run.len < u32::MAX {
                    run.len += 1;
                    run.last = p;
                    return;
                }
                self.flush();
                self.pending = Some(Pending {
                    start: p,
                    stride: 0,
                    len: 1,
                    last: p,
                });
            }
        }
    }

    /// Appends one directive event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is an `Event::Ref` (use [`Self::push_ref`]).
    pub fn push_directive(&mut self, event: Event) {
        assert!(
            !matches!(event, Event::Ref(_)),
            "push references through push_ref"
        );
        self.flush();
        self.ops.push(COp::Dir(event));
    }

    /// Seals the builder into a trace over `virtual_pages` pages.
    pub fn finish(mut self, virtual_pages: u32) -> CompressedTrace {
        self.flush();
        CompressedTrace {
            ops: self.ops,
            refs: self.refs,
            virtual_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn roundtrip(t: &Trace) -> CompressedTrace {
        let c = CompressedTrace::from_trace(t);
        assert_eq!(c.ref_count(), Trace::ref_count(t));
        assert_eq!(c.directive_count(), t.directive_count());
        assert_eq!(c.virtual_pages(), t.virtual_pages);
        assert_eq!(&c.to_trace(), t, "decompression is lossless");
        let via_iter: Vec<PageId> = c.iter_refs().collect();
        let direct: Vec<PageId> = t.refs().collect();
        assert_eq!(via_iter, direct, "iter_refs matches the flat refs");
        c
    }

    #[test]
    fn stride_one_sweep_compresses_to_one_op_per_cycle() {
        let t = synth::cyclic(64, 10);
        let c = roundtrip(&t);
        assert_eq!(c.op_count(), 10, "one run per sweep");
        match c.ops()[0] {
            COp::Run { start, stride, len } => {
                assert_eq!((start, stride, len), (0, 1, 64));
            }
            ref other => panic!("expected a run, got {other:?}"),
        }
    }

    #[test]
    fn constant_page_and_negative_strides_coalesce() {
        let refs: Vec<u32> = vec![5, 5, 5, 9, 7, 5, 3, 100];
        let t = Trace::from_events(refs.iter().map(|&p| Event::Ref(PageId(p))).collect());
        let c = roundtrip(&t);
        // [5×3 stride 0] [9,7,5,3 stride −2] [100]
        assert_eq!(c.op_count(), 3, "{:?}", c.ops());
    }

    #[test]
    fn directives_break_runs_and_survive_verbatim() {
        use cdmm_lang::ast::AllocArg;
        let t = Trace::from_events(vec![
            Event::Ref(PageId(0)),
            Event::Ref(PageId(1)),
            Event::Alloc(vec![AllocArg { pi: 2, pages: 3 }]),
            Event::Ref(PageId(2)),
            Event::Ref(PageId(3)),
            Event::Unlock { ranges: vec![] },
        ]);
        let c = roundtrip(&t);
        assert_eq!(c.op_count(), 4);
        assert_eq!(c.directive_count(), 2);
    }

    #[test]
    fn random_traces_roundtrip() {
        for seed in 0..6 {
            roundtrip(&synth::uniform(40, 2_000, seed));
        }
        roundtrip(&synth::nested_loops(5, 3, 9, 2));
        roundtrip(&Trace::default());
    }

    #[test]
    fn builder_streams_like_from_trace() {
        let t = synth::nested_loops(4, 2, 8, 3);
        let mut b = TraceBuilder::new();
        for p in t.refs() {
            b.push_ref(p);
        }
        assert_eq!(b.logical_len(), Trace::ref_count(&t));
        let c = b.finish(t.virtual_pages);
        assert_eq!(c, CompressedTrace::from_trace(&t));
    }

    #[test]
    fn distinct_pages_and_hints_match() {
        let t = synth::uniform(23, 500, 9);
        let c = CompressedTrace::from_trace(&t);
        assert_eq!(c.distinct_pages(), t.distinct_pages());
        assert_eq!(c.page_count_hint(), 23);
    }
}
