//! Directive-stream validation and deterministic fault injection.
//!
//! The CD runtime consumes directive streams produced by static
//! analysis, and static predictions are wrong often enough in practice
//! that the runtime must survive malformed streams (see the chaos suite
//! in `tests/chaos.rs`). This module provides both sides of that
//! contract:
//!
//! - [`validate`] checks a trace's directive stream against the
//!   well-formedness rules the instrumenter guarantees (PI-descending
//!   `ALLOCATE` lists, in-bounds `LOCK` ranges, matched `LOCK`/`UNLOCK`
//!   pairs) and reports every [`Violation`].
//! - [`DirectiveFuzzer`] perturbs a well-formed stream in seeded,
//!   reproducible ways — each perturbation tagged with its
//!   [`FaultKind`] and position — so tests can assert on the runtime's
//!   recovery behavior per fault class.
//!
//! The fuzzer never touches `Event::Ref`: the reference string is the
//! ground truth of program behavior, and every chaos invariant starts
//! from "the reference string is conserved". Even
//! [`FaultKind::TruncatedTrace`] only cuts the *directive* stream (the
//! model is a truncated directive side-channel merged with an intact
//! reference trace).

use cdmm_lang::ast::AllocArg;

use crate::event::{Event, PageRange, Trace};
use crate::synth::SplitMix64;

/// One class of directive-stream corruption. Doubles as the validator's
/// violation taxonomy and the fuzzer's perturbation menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An `ALLOCATE` the compiler inserted is missing from the stream.
    DroppedAlloc,
    /// An `ALLOCATE` appears twice in immediate succession.
    DuplicatedAlloc,
    /// A `LOCK` that partially overlaps a still-held lock, with neither
    /// covering the other — the earlier lock's release is ambiguous.
    /// Covering re-locks and locks left open at end-of-trace are *not*
    /// violations: instrumented loops re-issue their `LOCK`s every
    /// iteration and rely on the run's end to release them.
    UnmatchedLock,
    /// An `UNLOCK` that releases nothing (double-unlock, or unlock of a
    /// never-locked array).
    UnmatchedUnlock,
    /// A `LOCK` whose page range lies (partly) outside the program's
    /// virtual space, or is inverted (`start > end`).
    OutOfRangeLock,
    /// An `ALLOCATE` request list that is not PI-descending, or carries
    /// a zero priority index or a zero page count; or a `LOCK` with a
    /// zero release priority.
    PriorityInversion,
    /// The directive stream ends early: every directive after a cut
    /// point is missing.
    TruncatedTrace,
}

impl FaultKind {
    /// Every fault class, in a fixed order (the fuzzer's default menu).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::DroppedAlloc,
        FaultKind::DuplicatedAlloc,
        FaultKind::UnmatchedLock,
        FaultKind::UnmatchedUnlock,
        FaultKind::OutOfRangeLock,
        FaultKind::PriorityInversion,
        FaultKind::TruncatedTrace,
    ];
}

/// One well-formedness violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub kind: FaultKind,
    /// Index of the offending event in `trace.events`.
    pub at: usize,
}

/// Checks a trace's directive stream against the instrumenter's
/// well-formedness rules. An empty result means the stream is valid.
///
/// Range bounds are checked against `trace.virtual_pages` when it is
/// nonzero; synthetic traces with an unknown virtual space skip the
/// bounds check.
pub fn validate(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let vp = trace.virtual_pages;
    // Active lock directives: (event index, ranges).
    let mut held: Vec<(usize, Vec<PageRange>)> = Vec::new();
    for (at, event) in trace.events.iter().enumerate() {
        match event {
            Event::Ref(_) => {}
            Event::Alloc(args) => {
                let malformed = args.is_empty()
                    || args.iter().any(|a| a.pi == 0 || a.pages == 0)
                    || args.windows(2).any(|w| w[0].pi < w[1].pi);
                if malformed {
                    violations.push(Violation {
                        kind: FaultKind::PriorityInversion,
                        at,
                    });
                }
            }
            Event::Lock { pj, ranges } => {
                if *pj == 0 {
                    violations.push(Violation {
                        kind: FaultKind::PriorityInversion,
                        at,
                    });
                }
                let out_of_range = ranges
                    .iter()
                    .any(|r| r.start > r.end || (vp > 0 && r.end > vp) || r.start == r.end);
                if out_of_range {
                    violations.push(Violation {
                        kind: FaultKind::OutOfRangeLock,
                        at,
                    });
                }
                // A lock covering a still-held lock supersedes it, and
                // one covered by a still-held lock merely re-asserts
                // pinned pages — both are per-iteration re-lock idioms
                // of instrumented loops. Only a partial overlap (neither
                // covers the other) is ambiguous.
                held.retain(|(_, h)| !ranges_cover(ranges, h));
                if held
                    .iter()
                    .any(|(_, h)| ranges_overlap(h, ranges) && !ranges_cover(h, ranges))
                {
                    violations.push(Violation {
                        kind: FaultKind::UnmatchedLock,
                        at,
                    });
                }
                held.push((at, ranges.clone()));
            }
            Event::Unlock { ranges } => {
                let before = held.len();
                held.retain(|(_, h)| !ranges_overlap(h, ranges));
                if held.len() == before {
                    violations.push(Violation {
                        kind: FaultKind::UnmatchedUnlock,
                        at,
                    });
                }
            }
        }
    }
    violations
}

/// Do two range sets share at least one page?
pub fn ranges_overlap(a: &[PageRange], b: &[PageRange]) -> bool {
    a.iter()
        .any(|x| b.iter().any(|y| x.start < y.end && y.start < x.end))
}

/// Does range set `a` cover every page of range set `b`?
pub fn ranges_cover(a: &[PageRange], b: &[PageRange]) -> bool {
    // Merge `a` into disjoint sorted intervals, then check that each
    // range of `b` lies inside one merged interval.
    let mut merged: Vec<(u32, u32)> = a
        .iter()
        .filter(|r| r.start < r.end)
        .map(|r| (r.start, r.end))
        .collect();
    merged.sort_unstable();
    let mut disjoint: Vec<(u32, u32)> = Vec::with_capacity(merged.len());
    for (s, e) in merged {
        match disjoint.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => disjoint.push((s, e)),
        }
    }
    b.iter()
        .filter(|r| r.start < r.end)
        .all(|r| disjoint.iter().any(|&(s, e)| s <= r.start && r.end <= e))
}

/// One perturbation the fuzzer applied, tagged for test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// What was done.
    pub kind: FaultKind,
    /// Event index *in the perturbed trace* where the fault lives (for
    /// [`FaultKind::DroppedAlloc`] and [`FaultKind::TruncatedTrace`],
    /// the index where the removed material used to start).
    pub at: usize,
}

/// The outcome of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The perturbed trace.
    pub trace: Trace,
    /// Every perturbation applied, in application order.
    pub injections: Vec<Injection>,
}

impl FuzzReport {
    /// How many injections of the given kind were applied.
    pub fn count_of(&self, kind: FaultKind) -> usize {
        self.injections.iter().filter(|i| i.kind == kind).count()
    }
}

/// A seeded, reproducible directive-stream fuzzer.
///
/// The same seed over the same trace yields the same perturbed stream,
/// so every chaos campaign can be replayed from its seed alone.
///
/// # Examples
///
/// ```
/// use cdmm_trace::synth;
/// use cdmm_trace::validate::{validate, DirectiveFuzzer};
///
/// use cdmm_trace::validate::FaultKind;
///
/// let clean = synth::cyclic(8, 4);
/// let fuzzer = DirectiveFuzzer::new(7)
///     .with_kinds(&[FaultKind::OutOfRangeLock])
///     .with_injections(3);
/// let report = fuzzer.fuzz(&clean);
/// // References are sacred: only directives are perturbed.
/// assert_eq!(report.trace.ref_count(), clean.ref_count());
/// // Reproducible: the same seed gives the same stream.
/// let again = fuzzer.fuzz(&clean);
/// assert_eq!(report.trace, again.trace);
/// // And the validator flags what the fuzzer injected.
/// assert!(!report.injections.is_empty());
/// assert!(!validate(&report.trace).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DirectiveFuzzer {
    seed: u64,
    injections: usize,
    menu: Vec<FaultKind>,
}

impl DirectiveFuzzer {
    /// Creates a fuzzer with the given seed, one injection, and the
    /// full fault menu.
    pub fn new(seed: u64) -> Self {
        DirectiveFuzzer {
            seed,
            injections: 1,
            menu: FaultKind::ALL.to_vec(),
        }
    }

    /// Sets how many perturbations to apply per campaign.
    pub fn with_injections(mut self, n: usize) -> Self {
        self.injections = n;
        self
    }

    /// Restricts the fault menu (empty menus fall back to the full
    /// menu).
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        if !kinds.is_empty() {
            self.menu = kinds.to_vec();
        }
        self
    }

    /// Applies the configured number of seeded perturbations.
    pub fn fuzz(&self, trace: &Trace) -> FuzzReport {
        let mut rng = SplitMix64::new(self.seed);
        let mut events = trace.events.clone();
        let mut injections = Vec::new();
        for _ in 0..self.injections {
            let kind = self.menu[rng.below(self.menu.len() as u64) as usize];
            if let Some(at) = apply(kind, &mut events, trace.virtual_pages, &mut rng) {
                injections.push(Injection { kind, at });
            }
        }
        FuzzReport {
            trace: Trace {
                events,
                virtual_pages: trace.virtual_pages,
            },
            injections,
        }
    }
}

/// Applies one perturbation; returns the event index it touched, or
/// `None` when the trace offers no applicable site (e.g. dropping an
/// `ALLOCATE` from a trace that has none).
fn apply(
    kind: FaultKind,
    events: &mut Vec<Event>,
    virtual_pages: u32,
    rng: &mut SplitMix64,
) -> Option<usize> {
    let vp = virtual_pages.max(1);
    match kind {
        FaultKind::DroppedAlloc => {
            let at = pick(events, rng, |e| matches!(e, Event::Alloc(_)))?;
            events.remove(at);
            Some(at)
        }
        FaultKind::DuplicatedAlloc => {
            let at = pick(events, rng, |e| matches!(e, Event::Alloc(_)))?;
            let dup = events[at].clone();
            events.insert(at + 1, dup);
            Some(at + 1)
        }
        FaultKind::UnmatchedLock => {
            let at = rng.below(events.len() as u64 + 1) as usize;
            let start = rng.below(u64::from(vp)) as u32;
            let len = 1 + rng.below(4) as u32;
            events.insert(
                at,
                Event::Lock {
                    pj: rng.below(5) as u32, // may be 0: also invalid
                    ranges: vec![PageRange {
                        start,
                        end: (start + len).min(vp),
                    }],
                },
            );
            Some(at)
        }
        FaultKind::UnmatchedUnlock => {
            let at = rng.below(events.len() as u64 + 1) as usize;
            let start = rng.below(u64::from(vp)) as u32;
            events.insert(
                at,
                Event::Unlock {
                    ranges: vec![PageRange {
                        start,
                        end: (start + 1 + rng.below(4) as u32).min(vp),
                    }],
                },
            );
            Some(at)
        }
        FaultKind::OutOfRangeLock => {
            let at = rng.below(events.len() as u64 + 1) as usize;
            // Either fully beyond the virtual space or inverted.
            let range = if rng.below(2) == 0 {
                PageRange {
                    start: vp + rng.below(16) as u32,
                    end: vp + 16 + rng.below(16) as u32,
                }
            } else {
                PageRange {
                    start: vp + 8,
                    end: vp.saturating_sub(1),
                }
            };
            events.insert(
                at,
                Event::Lock {
                    pj: 1 + rng.below(4) as u32,
                    ranges: vec![range],
                },
            );
            Some(at)
        }
        FaultKind::PriorityInversion => {
            let at = pick(
                events,
                rng,
                |e| matches!(e, Event::Alloc(args) if !args.is_empty()),
            )?;
            if let Event::Alloc(args) = &mut events[at] {
                corrupt_alloc(args, rng);
            }
            Some(at)
        }
        FaultKind::TruncatedTrace => {
            if events.is_empty() {
                return None;
            }
            let cut = rng.below(events.len() as u64) as usize;
            // Drop every *directive* from the cut onward; references
            // survive so program behavior stays observable.
            let mut idx = 0usize;
            events.retain(|e| {
                let keep = matches!(e, Event::Ref(_)) || idx < cut;
                idx += 1;
                keep
            });
            Some(cut)
        }
    }
}

/// Corrupts an `ALLOCATE` list: invert its priority order when it has
/// at least two requests, otherwise zero out a field.
fn corrupt_alloc(args: &mut [AllocArg], rng: &mut SplitMix64) {
    if args.len() >= 2 {
        args.reverse();
        // Reversing an already-sorted list always breaks PI-descending
        // order unless every PI is equal — force the issue then.
        if args.windows(2).all(|w| w[0].pi >= w[1].pi) {
            args[0].pi = 0;
        }
    } else if rng.below(2) == 0 {
        args[0].pi = 0;
    } else {
        args[0].pages = 0;
    }
}

/// Picks a uniformly random event index satisfying `want`.
fn pick(events: &[Event], rng: &mut SplitMix64, want: impl Fn(&Event) -> bool) -> Option<usize> {
    let candidates: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| want(e))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PageId;

    fn directed_trace() -> Trace {
        Trace {
            events: vec![
                Event::Alloc(vec![
                    AllocArg { pi: 3, pages: 12 },
                    AllocArg { pi: 1, pages: 4 },
                ]),
                Event::Ref(PageId(0)),
                Event::Lock {
                    pj: 2,
                    ranges: vec![PageRange::new(0, 4)],
                },
                Event::Ref(PageId(1)),
                Event::Unlock {
                    ranges: vec![PageRange::new(0, 4)],
                },
                Event::Alloc(vec![AllocArg { pi: 1, pages: 2 }]),
                Event::Ref(PageId(2)),
            ],
            virtual_pages: 8,
        }
    }

    #[test]
    fn clean_stream_validates() {
        assert_eq!(validate(&directed_trace()), vec![]);
    }

    #[test]
    fn validator_flags_each_fault_class() {
        let mut t = directed_trace();
        t.events[0] = Event::Alloc(vec![
            AllocArg { pi: 1, pages: 4 },
            AllocArg { pi: 3, pages: 12 },
        ]);
        assert!(validate(&t)
            .iter()
            .any(|v| v.kind == FaultKind::PriorityInversion && v.at == 0));

        let mut t = directed_trace();
        t.events[2] = Event::Lock {
            pj: 2,
            ranges: vec![PageRange::new(6, 99)],
        };
        let vs = validate(&t);
        assert!(vs.iter().any(|v| v.kind == FaultKind::OutOfRangeLock));

        // A partial re-lock: overlaps the held [0,4) without covering it.
        let mut t = directed_trace();
        t.events.insert(
            3,
            Event::Lock {
                pj: 1,
                ranges: vec![PageRange::new(2, 6)],
            },
        );
        assert!(validate(&t)
            .iter()
            .any(|v| v.kind == FaultKind::UnmatchedLock && v.at == 3));

        // A superseding re-lock (covers the held lock) is the normal
        // per-iteration idiom — clean. And the trailing open lock at
        // end-of-trace is clean too.
        let mut t = directed_trace();
        t.events.insert(
            3,
            Event::Lock {
                pj: 1,
                ranges: vec![PageRange::new(0, 4)],
            },
        );
        t.events.remove(5); // drop the UNLOCK entirely
        assert_eq!(validate(&t), vec![]);

        let mut t = directed_trace();
        t.events[2] = Event::Lock {
            pj: 0,
            ranges: vec![PageRange::new(0, 4)],
        };
        assert!(validate(&t)
            .iter()
            .any(|v| v.kind == FaultKind::PriorityInversion && v.at == 2));

        let mut t = directed_trace();
        t.events.push(Event::Unlock {
            ranges: vec![PageRange::new(0, 4)],
        });
        assert!(validate(&t)
            .iter()
            .any(|v| v.kind == FaultKind::UnmatchedUnlock));
    }

    #[test]
    fn fuzzer_is_deterministic_and_ref_preserving() {
        let clean = directed_trace();
        for seed in 0..50u64 {
            let f = DirectiveFuzzer::new(seed).with_injections(4);
            let a = f.fuzz(&clean);
            let b = f.fuzz(&clean);
            assert_eq!(a.trace, b.trace, "seed {seed} not reproducible");
            assert_eq!(a.injections, b.injections);
            let refs_a: Vec<PageId> = a.trace.refs().collect();
            let refs_clean: Vec<PageId> = clean.refs().collect();
            assert_eq!(refs_a, refs_clean, "seed {seed} disturbed the refs");
        }
    }

    #[test]
    fn every_kind_is_injectable_and_detected() {
        let clean = directed_trace();
        for kind in FaultKind::ALL {
            let mut hit = false;
            for seed in 0..20u64 {
                let report = DirectiveFuzzer::new(seed)
                    .with_kinds(&[kind])
                    .with_injections(1)
                    .fuzz(&clean);
                if report.count_of(kind) == 0 {
                    continue;
                }
                hit = true;
                if matches!(
                    kind,
                    FaultKind::DroppedAlloc
                        | FaultKind::DuplicatedAlloc
                        | FaultKind::UnmatchedLock
                        | FaultKind::TruncatedTrace
                ) {
                    // Removal, duplication and stray-lock faults are
                    // invisible to stream-local validation (open locks
                    // at end-of-trace are legal); only the runtime's
                    // behavior exposes them.
                    continue;
                }
                assert!(
                    !validate(&report.trace).is_empty(),
                    "{kind:?} (seed {seed}) escaped the validator"
                );
            }
            assert!(hit, "{kind:?} never applied in 20 seeds");
        }
    }

    #[test]
    fn truncation_only_cuts_directives() {
        let clean = directed_trace();
        let report = DirectiveFuzzer::new(3)
            .with_kinds(&[FaultKind::TruncatedTrace])
            .fuzz(&clean);
        assert_eq!(report.trace.ref_count(), clean.ref_count());
        assert!(report.trace.directive_count() <= clean.directive_count());
    }

    #[test]
    fn refless_trace_is_fuzzable() {
        let t = Trace::default();
        let report = DirectiveFuzzer::new(1).with_injections(5).fuzz(&t);
        // Insertion faults still apply to an empty stream; removal
        // faults are skipped.
        assert!(report.trace.events.len() <= 5);
    }
}
