//! A mini-FORTRAN interpreter that emits array page-reference traces.
//!
//! The interpreter executes the program with real `f64` arithmetic (so
//! data-dependent control flow behaves like the original algorithms) and
//! appends one [`Event::Ref`] per array-element read or write. Scalar
//! variables live in registers and never touch the trace; the paper makes
//! the same assumption ("all constants and instructions are permanently
//! resident in memory").

use std::collections::HashMap;
use std::fmt;

use cdmm_lang::ast::{BinOp, Directive, Expr, Program, RelOp, Stmt, UnOp};
use cdmm_lang::sema::SymbolTable;
use cdmm_lang::LangError;

use crate::cancel::CancelToken;
use crate::compress::{CompressedTrace, TraceBuilder};
use crate::event::{Event, Trace};
use crate::layout::MemoryLayout;

/// How many emitted events pass between [`CancelToken`] polls. A poll
/// reads the monotonic clock when a deadline is set, which would
/// dominate the ~nanoseconds it takes to emit one reference; every 4096
/// events the cost vanishes while a deadline still bounds `prepare`
/// within a fraction of a millisecond of trace generation.
pub const POLL_INTERVAL: u64 = 4096;

/// Interpreter limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Hard cap on emitted events; exceeding it is an error (runaway-loop
    /// protection for generated workloads).
    pub max_events: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_events: 100_000_000,
        }
    }
}

/// Anything that can go wrong while generating a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Front-end failure (when entering through [`crate::trace_program`]).
    Lang(LangError),
    /// A subscript fell outside the declared extents.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Row subscript used.
        row: i64,
        /// Column subscript used (1 for vectors).
        col: i64,
    },
    /// A subscript expression evaluated to a non-integer.
    BadSubscript {
        /// Array name.
        array: String,
        /// Offending value.
        value: f64,
    },
    /// An intrinsic was called with the wrong number of arguments.
    WrongArity {
        /// Intrinsic name.
        name: String,
        /// Arguments received.
        got: usize,
    },
    /// A `DO` loop has a zero step.
    ZeroStep,
    /// The event cap was exceeded.
    EventLimit {
        /// The configured cap.
        limit: u64,
    },
    /// A [`CancelToken`] stopped trace generation (cancellation or an
    /// expired deadline).
    Cancelled {
        /// Logical events emitted before the stop.
        events_done: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Lang(e) => write!(f, "front end: {e}"),
            InterpError::OutOfBounds { array, row, col } => {
                write!(f, "subscript ({row},{col}) out of bounds for array {array}")
            }
            InterpError::BadSubscript { array, value } => {
                write!(f, "non-integer subscript {value} for array {array}")
            }
            InterpError::WrongArity { name, got } => {
                write!(f, "intrinsic {name} called with {got} arguments")
            }
            InterpError::ZeroStep => f.write_str("DO loop with zero step"),
            InterpError::EventLimit { limit } => {
                write!(f, "trace exceeded the {limit}-event limit")
            }
            InterpError::Cancelled { events_done } => {
                write!(f, "trace generation cancelled after {events_done} events")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Executes one program and produces its trace.
#[derive(Debug)]
pub struct Interpreter<'a> {
    program: &'a Program,
    layout: MemoryLayout,
    config: InterpConfig,
    scalars: HashMap<String, f64>,
    arrays: HashMap<String, Vec<f64>>,
    /// References and directives stream into the compressed builder;
    /// the flat `Vec<Event>` only exists if a caller asks for it.
    builder: TraceBuilder,
    emitted: u64,
    cancel: Option<CancelToken>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a checked program.
    pub fn new(program: &'a Program, symbols: &SymbolTable, layout: MemoryLayout) -> Self {
        let mut arrays = HashMap::new();
        for (name, shape) in &symbols.arrays {
            arrays.insert(name.clone(), vec![0.0_f64; shape.elements() as usize]);
        }
        // PARAMETER constants are ordinary named values at run time.
        let scalars: HashMap<String, f64> = program
            .params
            .iter()
            .map(|(n, v)| (n.clone(), *v as f64))
            .collect();
        Interpreter {
            program,
            layout,
            config: InterpConfig::default(),
            scalars,
            arrays,
            builder: TraceBuilder::new(),
            emitted: 0,
            cancel: None,
        }
    }

    /// Overrides the interpreter limits.
    pub fn with_config(mut self, config: InterpConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a cancellation token, polled every [`POLL_INTERVAL`]
    /// emitted events so a deadline bounds trace generation too.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs the program to completion and returns the trace.
    pub fn run(self) -> Result<Trace, InterpError> {
        Ok(self.run_with_state()?.0)
    }

    /// Runs the program and also returns its final variable state, for
    /// validating that the traced computations are numerically sensible.
    pub fn run_with_state(self) -> Result<(Trace, ProgramState), InterpError> {
        let (compressed, state) = self.run_compressed_with_state()?;
        Ok((compressed.to_trace(), state))
    }

    /// Runs the program and returns the compressed trace — the native
    /// output; [`Self::run`] is this plus a decompression.
    pub fn run_compressed(self) -> Result<CompressedTrace, InterpError> {
        Ok(self.run_compressed_with_state()?.0)
    }

    /// [`Self::run_compressed`] with the final variable state.
    pub fn run_compressed_with_state(
        mut self,
    ) -> Result<(CompressedTrace, ProgramState), InterpError> {
        let body = &self.program.body;
        self.exec_block(body)?;
        let trace = self.builder.finish(self.layout.total_pages());
        let state = ProgramState {
            scalars: self.scalars,
            arrays: self.arrays,
        };
        Ok((trace, state))
    }

    /// Charges one logical event against the runaway-trace cap and, on
    /// the poll cadence, against the cancellation token.
    fn charge(&mut self) -> Result<(), InterpError> {
        if self.emitted >= self.config.max_events {
            return Err(InterpError::EventLimit {
                limit: self.config.max_events,
            });
        }
        if self.emitted.is_multiple_of(POLL_INTERVAL) {
            if let Some(token) = &self.cancel {
                if token.should_stop() {
                    return Err(InterpError::Cancelled {
                        events_done: self.emitted,
                    });
                }
            }
        }
        self.emitted += 1;
        Ok(())
    }

    fn push(&mut self, ev: Event) -> Result<(), InterpError> {
        self.charge()?;
        self.builder.push_directive(ev);
        Ok(())
    }

    fn exec_block(&mut self, stmts: &'a [Stmt]) -> Result<(), InterpError> {
        for stmt in stmts {
            self.exec_stmt(stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &'a Stmt) -> Result<(), InterpError> {
        match stmt {
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let lo = self.eval_int(lo, "DO bound")?;
                let hi = self.eval_int(hi, "DO bound")?;
                let step = match step {
                    Some(s) => self.eval_int(s, "DO step")?,
                    None => 1,
                };
                if step == 0 {
                    return Err(InterpError::ZeroStep);
                }
                // FORTRAN-77 trip count semantics.
                let trips = (hi - lo + step) / step;
                let mut v = lo;
                for _ in 0..trips.max(0) {
                    self.scalars.insert(var.clone(), v as f64);
                    self.exec_block(body)?;
                    v += step;
                }
                // The control variable keeps its post-loop value.
                self.scalars.insert(var.clone(), v as f64);
                Ok(())
            }
            Stmt::Assign { target, value, .. } => {
                let v = self.eval(value)?;
                match target {
                    Expr::Scalar(name) => {
                        self.scalars.insert(name.clone(), v);
                        Ok(())
                    }
                    Expr::Element { array, indices, .. } => {
                        let (row, col) = self.eval_subscripts(array, indices)?;
                        self.touch(array, row, col)?;
                        let linear = self
                            .layout
                            .linear_of(array, row, col)
                            .expect("touch already validated bounds");
                        let slot = self
                            .arrays
                            .get_mut(array)
                            .expect("sema guarantees the array exists");
                        slot[linear] = v;
                        Ok(())
                    }
                    other => unreachable!("sema rejects target {other:?}"),
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.eval(cond)?;
                if c != 0.0 {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            Stmt::Continue { .. } => Ok(()),
            Stmt::Directive { dir, .. } => self.exec_directive(dir),
        }
    }

    fn exec_directive(&mut self, dir: &Directive) -> Result<(), InterpError> {
        match dir {
            Directive::Allocate { args } => self.push(Event::Alloc(args.clone())),
            Directive::Lock { pj, arrays } => {
                let ranges = self.layout.ranges_of(arrays);
                self.push(Event::Lock { pj: *pj, ranges })
            }
            Directive::Unlock { arrays } => {
                let ranges = self.layout.ranges_of(arrays);
                self.push(Event::Unlock { ranges })
            }
        }
    }

    /// Records a reference to element `(row, col)` of `array`.
    fn touch(&mut self, array: &str, row: i64, col: i64) -> Result<(), InterpError> {
        match self.layout.page_of(array, row, col) {
            Some(page) => {
                self.charge()?;
                self.builder.push_ref(page);
                Ok(())
            }
            None => Err(InterpError::OutOfBounds {
                array: array.to_string(),
                row,
                col,
            }),
        }
    }

    fn eval_subscripts(
        &mut self,
        array: &str,
        indices: &'a [Expr],
    ) -> Result<(i64, i64), InterpError> {
        let row = self.eval_subscript(array, &indices[0])?;
        let col = if indices.len() > 1 {
            self.eval_subscript(array, &indices[1])?
        } else {
            1
        };
        Ok((row, col))
    }

    fn eval_subscript(&mut self, array: &str, e: &'a Expr) -> Result<i64, InterpError> {
        let v = self.eval(e)?;
        if v.fract().abs() > 1e-9 || !v.is_finite() {
            return Err(InterpError::BadSubscript {
                array: array.to_string(),
                value: v,
            });
        }
        Ok(v.round() as i64)
    }

    fn eval_int(&mut self, e: &'a Expr, _what: &str) -> Result<i64, InterpError> {
        let v = self.eval(e)?;
        Ok(v.round() as i64)
    }

    fn eval(&mut self, e: &'a Expr) -> Result<f64, InterpError> {
        match e {
            Expr::Int(v) => Ok(*v as f64),
            Expr::Real(v) => Ok(*v),
            Expr::Scalar(name) => Ok(self.scalars.get(name).copied().unwrap_or(0.0)),
            Expr::Element { array, indices, .. } => {
                let (row, col) = self.eval_subscripts(array, indices)?;
                self.touch(array, row, col)?;
                let linear = self
                    .layout
                    .linear_of(array, row, col)
                    .expect("touch already validated bounds");
                Ok(self.arrays[array][linear])
            }
            Expr::Call { name, args, .. } => self.eval_intrinsic(name, args),
            Expr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            0.0
                        } else {
                            a / b
                        }
                    }
                    BinOp::Pow => clamp_finite(a.powf(b)),
                })
            }
            Expr::Un {
                op: UnOp::Neg,
                operand,
            } => Ok(-self.eval(operand)?),
            Expr::Rel { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                let r = match op {
                    RelOp::Gt => a > b,
                    RelOp::Ge => a >= b,
                    RelOp::Lt => a < b,
                    RelOp::Le => a <= b,
                    RelOp::Eq => a == b,
                    RelOp::Ne => a != b,
                };
                Ok(if r { 1.0 } else { 0.0 })
            }
            Expr::And(a, b) => {
                let av = self.eval(a)?;
                if av == 0.0 {
                    // FORTRAN does not guarantee short-circuiting, but the
                    // denotation is the same for side-effect-free operands;
                    // we still evaluate `b` so its array references trace.
                    let _ = self.eval(b)?;
                    Ok(0.0)
                } else {
                    Ok(if self.eval(b)? != 0.0 { 1.0 } else { 0.0 })
                }
            }
            Expr::Or(a, b) => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                Ok(if av != 0.0 || bv != 0.0 { 1.0 } else { 0.0 })
            }
            Expr::Not(inner) => Ok(if self.eval(inner)? == 0.0 { 1.0 } else { 0.0 }),
        }
    }

    fn eval_intrinsic(&mut self, name: &str, args: &'a [Expr]) -> Result<f64, InterpError> {
        let arity = |n: usize| -> Result<(), InterpError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(InterpError::WrongArity {
                    name: name.to_string(),
                    got: args.len(),
                })
            }
        };
        match name {
            "ABS" => {
                arity(1)?;
                Ok(self.eval(&args[0])?.abs())
            }
            "SQRT" => {
                arity(1)?;
                Ok(self.eval(&args[0])?.abs().sqrt())
            }
            "EXP" => {
                arity(1)?;
                Ok(clamp_finite(self.eval(&args[0])?.min(700.0).exp()))
            }
            "ALOG" => {
                arity(1)?;
                let v = self.eval(&args[0])?.abs();
                Ok(if v == 0.0 { 0.0 } else { v.ln() })
            }
            "SIN" => {
                arity(1)?;
                Ok(self.eval(&args[0])?.sin())
            }
            "COS" => {
                arity(1)?;
                Ok(self.eval(&args[0])?.cos())
            }
            "MOD" => {
                arity(2)?;
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                Ok(if b == 0.0 { 0.0 } else { a % b })
            }
            "MIN" | "MAX" => {
                if args.len() < 2 {
                    return Err(InterpError::WrongArity {
                        name: name.to_string(),
                        got: args.len(),
                    });
                }
                let mut acc = self.eval(&args[0])?;
                for a in &args[1..] {
                    let v = self.eval(a)?;
                    acc = if name == "MIN" {
                        acc.min(v)
                    } else {
                        acc.max(v)
                    };
                }
                Ok(acc)
            }
            "FLOAT" => {
                arity(1)?;
                self.eval(&args[0])
            }
            "INT" => {
                arity(1)?;
                Ok(self.eval(&args[0])?.trunc())
            }
            "SIGN" => {
                arity(2)?;
                let a = self.eval(&args[0])?.abs();
                let b = self.eval(&args[1])?;
                Ok(if b < 0.0 { -a } else { a })
            }
            other => Err(InterpError::WrongArity {
                name: other.to_string(),
                got: args.len(),
            }),
        }
    }
}

/// The final variable values of an executed program.
#[derive(Debug, Clone, Default)]
pub struct ProgramState {
    scalars: HashMap<String, f64>,
    arrays: HashMap<String, Vec<f64>>,
}

impl ProgramState {
    /// Final value of a scalar (0.0 when never assigned, like the
    /// interpreter's own default).
    pub fn scalar(&self, name: &str) -> f64 {
        self.scalars.get(name).copied().unwrap_or(0.0)
    }

    /// Final value of `array(row, col)` (1-based, column-major), or
    /// `None` for unknown arrays. Pass `col = 1` for vectors. The rows
    /// count must be supplied because the state does not retain shapes.
    pub fn element(&self, array: &str, rows: u64, row: u64, col: u64) -> Option<f64> {
        let data = self.arrays.get(array)?;
        if row < 1 || col < 1 {
            return None;
        }
        data.get(((col - 1) * rows + (row - 1)) as usize).copied()
    }

    /// The raw column-major contents of one array.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.arrays.get(name).map(Vec::as_slice)
    }
}

/// Replaces non-finite intermediate values with large-but-finite ones so a
/// numerical blow-up cannot poison subscripts later.
fn clamp_finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else if v.is_nan() {
        0.0
    } else if v > 0.0 {
        f64::MAX / 2.0
    } else {
        f64::MIN / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PageId;
    use crate::trace_program;
    use cdmm_locality::PageGeometry;

    fn trace(src: &str) -> Trace {
        trace_program(src, PageGeometry::PAPER).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn sequential_vector_walk_pages_in_order() {
        let t =
            trace("PROGRAM T\nDIMENSION V(128)\nDO 10 I = 1, 128\nV(I) = 1.0\n10 CONTINUE\nEND");
        assert_eq!(t.ref_count(), 128);
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert!(pages[..64].iter().all(|&p| p == 0));
        assert!(pages[64..].iter().all(|&p| p == 1));
    }

    #[test]
    fn column_walk_stays_on_page_row_walk_strides() {
        let t = trace(
            "PROGRAM T\nPARAMETER (N = 64)\nDIMENSION A(N,N)\nDO 10 K = 1, N\nA(K,3) = 1.0\n10 CONTINUE\nEND",
        );
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert!(pages.iter().all(|&p| p == 2), "column 3 lives on page 2");

        let t = trace(
            "PROGRAM T\nPARAMETER (N = 64)\nDIMENSION A(N,N)\nDO 10 J = 1, N\nA(3,J) = 1.0\n10 CONTINUE\nEND",
        );
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        let expect: Vec<u32> = (0..64).collect();
        assert_eq!(pages, expect, "row walk touches a fresh page per step");
    }

    #[test]
    fn values_actually_compute() {
        // Sum 1..100 via an array, then branch on the result.
        let t = trace(
            "PROGRAM T\nDIMENSION V(100), W(1)\nDO 10 I = 1, 100\nV(I) = FLOAT(I)\n10 CONTINUE\n\
             S = 0.0\nDO 20 I = 1, 100\nS = S + V(I)\n20 CONTINUE\n\
             IF (S .EQ. 5050.0) W(1) = 1.0\nEND",
        );
        // 100 writes + 100 reads + 1 conditional write.
        assert_eq!(t.ref_count(), 201);
    }

    #[test]
    fn do_loop_step_and_zero_trip() {
        let t =
            trace("PROGRAM T\nDIMENSION V(10)\nDO 10 I = 1, 10, 3\nV(I) = 1.0\n10 CONTINUE\nEND");
        assert_eq!(t.ref_count(), 4); // I = 1, 4, 7, 10.
        let t = trace("PROGRAM T\nDIMENSION V(10)\nDO 10 I = 5, 1\nV(I) = 1.0\n10 CONTINUE\nEND");
        assert_eq!(t.ref_count(), 0, "zero-trip loop");
        let t =
            trace("PROGRAM T\nDIMENSION V(10)\nDO 10 I = 5, 1, -2\nV(I) = 1.0\n10 CONTINUE\nEND");
        assert_eq!(t.ref_count(), 3, "negative step: 5, 3, 1");
    }

    #[test]
    fn if_branches_control_tracing() {
        let t = trace(
            "PROGRAM T\nDIMENSION V(4), W(4)\nDO 10 I = 1, 4\nIF (MOD(FLOAT(I), 2.0) .EQ. 0.0) THEN\nV(I) = 1.0\nELSE\nW(I) = 1.0\nENDIF\n10 CONTINUE\nEND",
        );
        assert_eq!(t.ref_count(), 4);
    }

    #[test]
    fn directive_events_pass_through() {
        let t = trace(
            "PROGRAM T\nDIMENSION V(64), W(64)\n!MD$ ALLOCATE ((2,4) ELSE (1,2))\nDO 10 I = 1, 4\n!MD$ LOCK (2,V)\nV(I) = 1.0\n10 CONTINUE\n!MD$ UNLOCK (V)\nEND",
        );
        assert_eq!(t.directive_count(), 1 + 4 + 1);
        match &t.events[0] {
            Event::Alloc(args) => assert_eq!(args.len(), 2),
            other => panic!("{other:?}"),
        }
        let lock = t
            .events
            .iter()
            .find(|e| matches!(e, Event::Lock { .. }))
            .unwrap();
        match lock {
            Event::Lock { pj, ranges } => {
                assert_eq!(*pj, 2);
                assert_eq!(ranges.len(), 1);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[0].end, 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let err = trace_program(
            "PROGRAM T\nDIMENSION V(4)\nDO 10 I = 1, 5\nV(I) = 1.0\n10 CONTINUE\nEND",
            PageGeometry::PAPER,
        )
        .unwrap_err();
        assert_eq!(
            err,
            InterpError::OutOfBounds {
                array: "V".into(),
                row: 5,
                col: 1
            }
        );
    }

    #[test]
    fn event_limit_trips() {
        let mut p = cdmm_lang::parse(
            "PROGRAM T\nDIMENSION V(4)\nDO 10 I = 1, 1000\nV(1) = 1.0\n10 CONTINUE\nEND",
        )
        .unwrap();
        let syms = cdmm_lang::analyze(&mut p).unwrap();
        let layout = MemoryLayout::new(&syms, PageGeometry::PAPER);
        let err = Interpreter::new(&p, &syms, layout)
            .with_config(InterpConfig { max_events: 10 })
            .run()
            .unwrap_err();
        assert_eq!(err, InterpError::EventLimit { limit: 10 });
    }

    #[test]
    fn cancelled_token_stops_trace_generation_at_the_first_poll() {
        let mut p = cdmm_lang::parse(
            "PROGRAM T\nDIMENSION V(4)\nDO 10 I = 1, 1000\nV(1) = 1.0\n10 CONTINUE\nEND",
        )
        .unwrap();
        let syms = cdmm_lang::analyze(&mut p).unwrap();
        let layout = MemoryLayout::new(&syms, PageGeometry::PAPER);
        let token = CancelToken::new();
        token.cancel();
        let err = Interpreter::new(&p, &syms, layout)
            .with_cancel(token)
            .run()
            .unwrap_err();
        assert_eq!(err, InterpError::Cancelled { events_done: 0 });
    }

    #[test]
    fn idle_token_leaves_the_trace_unchanged() {
        let src = "PROGRAM T\nDIMENSION V(128)\nDO 10 I = 1, 128\nV(I) = 1.0\n10 CONTINUE\nEND";
        let plain = trace(src);
        let mut p = cdmm_lang::parse(src).unwrap();
        let syms = cdmm_lang::analyze(&mut p).unwrap();
        let layout = MemoryLayout::new(&syms, PageGeometry::PAPER);
        let traced = Interpreter::new(&p, &syms, layout)
            .with_cancel(CancelToken::new())
            .run()
            .unwrap();
        assert_eq!(traced, plain);
    }

    #[test]
    fn expired_deadline_cancels_a_long_trace_mid_generation() {
        use std::time::Duration;
        // ~10M references: far more than one poll interval, and far more
        // than a zero deadline allows.
        let mut p = cdmm_lang::parse(
            "PROGRAM T\nDIMENSION V(64)\nDO 20 J = 1, 160000\nDO 10 I = 1, 64\nV(I) = 1.0\n10 CONTINUE\n20 CONTINUE\nEND",
        )
        .unwrap();
        let syms = cdmm_lang::analyze(&mut p).unwrap();
        let layout = MemoryLayout::new(&syms, PageGeometry::PAPER);
        let err = Interpreter::new(&p, &syms, layout)
            .with_cancel(CancelToken::with_deadline(Duration::ZERO))
            .run()
            .unwrap_err();
        match err {
            InterpError::Cancelled { events_done } => {
                assert!(events_done < POLL_INTERVAL, "stopped at the first poll");
            }
            other => panic!("expected cancellation, got {other}"),
        }
    }

    #[test]
    fn intrinsics_compute() {
        let t = trace(
            "PROGRAM T\nDIMENSION V(8)\n\
             V(1) = SQRT(16.0)\nV(2) = ABS(-3.0)\nV(3) = MAX(1.0, 2.0, 7.0)\n\
             V(4) = MIN(5.0, 2.0)\nV(5) = MOD(7.0, 3.0)\nV(6) = SIGN(2.0, -1.0)\n\
             V(7) = INT(3.9)\nV(8) = ALOG(EXP(1.0))\nEND",
        );
        assert_eq!(t.ref_count(), 8);
    }

    #[test]
    fn scalar_only_programs_emit_nothing() {
        let t = trace("PROGRAM T\nX = 1.0\nDO 10 I = 1, 100\nX = X + 1.0\n10 CONTINUE\nEND");
        assert_eq!(t.ref_count(), 0);
        assert_eq!(t.virtual_pages, 0);
    }

    #[test]
    fn reads_trace_before_writes() {
        let t = trace("PROGRAM T\nDIMENSION V(200)\nV(100) = V(1) + 1.0\nEND");
        let pages: Vec<PageId> = t.refs().collect();
        assert_eq!(
            pages,
            vec![PageId(0), PageId(1)],
            "read page then write page"
        );
    }

    #[test]
    fn indices_may_come_from_arrays() {
        let t = trace("PROGRAM T\nDIMENSION IX(4), V(300)\nIX(1) = 3.0\nV(IX(1) * 64) = 1.0\nEND");
        // Write IX(1); read IX(1); write V(192).
        let pages: Vec<PageId> = t.refs().collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[2], PageId(1 + 2), "element 192 is page 3 of V");
    }
}
