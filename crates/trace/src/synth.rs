//! Synthetic reference-string generators.
//!
//! The policy test suites need reference strings with known structure:
//! cyclic sweeps (the classic LRU worst case), phased localities (the WS
//! transition case the paper discusses), and uniform random noise. A
//! small deterministic SplitMix64 generator keeps the crate free of
//! external dependencies and the traces reproducible.

use crate::event::{Event, PageId, Trace};

/// A tiny deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for the bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A cyclic sweep over `pages` pages repeated `cycles` times — with
/// allocation below `pages`, LRU faults on every reference.
pub fn cyclic(pages: u32, cycles: u32) -> Trace {
    let mut events = Vec::with_capacity((pages as usize) * (cycles as usize));
    for _ in 0..cycles {
        for p in 0..pages {
            events.push(Event::Ref(PageId(p)));
        }
    }
    Trace {
        events,
        virtual_pages: pages,
    }
}

/// Uniform random references over `pages` pages.
pub fn uniform(pages: u32, len: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let events = (0..len)
        .map(|_| Event::Ref(PageId(rng.below(pages as u64) as u32)))
        .collect();
    Trace {
        events,
        virtual_pages: pages,
    }
}

/// Description of one program phase for [`phased`].
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// First page of the phase's locality set.
    pub base: u32,
    /// Number of pages in the locality set.
    pub pages: u32,
    /// References spent in the phase.
    pub refs: usize,
}

/// A phased trace: within each phase, references are uniform over the
/// phase's locality set. Phase transitions are where WS-style policies
/// over- and under-allocate.
pub fn phased(phases: &[Phase], seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut events = Vec::with_capacity(phases.iter().map(|p| p.refs).sum());
    let mut max_page = 0;
    for ph in phases {
        assert!(ph.pages > 0, "phase needs at least one page");
        max_page = max_page.max(ph.base + ph.pages);
        for _ in 0..ph.refs {
            let p = ph.base + rng.below(ph.pages as u64) as u32;
            events.push(Event::Ref(PageId(p)));
        }
    }
    Trace {
        events,
        virtual_pages: max_page,
    }
}

/// A nested-loop trace mimicking a column-major inner loop over an
/// `inner_pages`-page working set re-executed `outer` times, with
/// `outer_pages` outer-loop pages touched between repetitions. This is the
/// access shape the paper's Section 2 examples describe.
pub fn nested_loops(outer: u32, outer_pages: u32, inner_pages: u32, inner_repeat: u32) -> Trace {
    let mut events = Vec::new();
    for _ in 0..outer {
        for p in 0..outer_pages {
            events.push(Event::Ref(PageId(p)));
        }
        for _ in 0..inner_repeat {
            for p in 0..inner_pages {
                events.push(Event::Ref(PageId(outer_pages + p)));
            }
        }
    }
    Trace {
        events,
        virtual_pages: outer_pages + inner_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }

    #[test]
    fn cyclic_shape() {
        let t = cyclic(5, 3);
        assert_eq!(t.ref_count(), 15);
        assert_eq!(t.distinct_pages(), 5);
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert_eq!(&pages[..5], &[0, 1, 2, 3, 4]);
        assert_eq!(&pages[5..10], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn uniform_covers_pages() {
        let t = uniform(8, 10_000, 1);
        assert_eq!(t.ref_count(), 10_000);
        assert_eq!(t.distinct_pages(), 8);
    }

    #[test]
    fn phased_stays_in_phase() {
        let t = phased(
            &[
                Phase {
                    base: 0,
                    pages: 4,
                    refs: 100,
                },
                Phase {
                    base: 10,
                    pages: 2,
                    refs: 50,
                },
            ],
            3,
        );
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert!(pages[..100].iter().all(|&p| p < 4));
        assert!(pages[100..].iter().all(|&p| (10..12).contains(&p)));
        assert_eq!(t.virtual_pages, 12);
    }

    #[test]
    fn nested_loops_shape() {
        let t = nested_loops(2, 1, 3, 2);
        let pages: Vec<u32> = t.refs().map(|p| p.0).collect();
        assert_eq!(pages, vec![0, 1, 2, 3, 1, 2, 3, 0, 1, 2, 3, 1, 2, 3]);
    }
}
