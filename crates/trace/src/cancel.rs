//! Cooperative cancellation and deadlines for long traces and
//! simulations.
//!
//! A [`CancelToken`] combines a shared cancellation flag with an
//! optional wall-clock deadline. The cancellable simulate drivers
//! (`cdmm_vmsim::simulate_cancellable` and its run-level sibling) poll
//! the token once per compressed trace *run* — not per reference — so
//! the simulate hot loop stays untouched: a run of a few thousand
//! references pays one atomic load and (when a deadline is set) one
//! monotonic clock read. The trace interpreter polls it once per
//! [`crate::interp::POLL_INTERVAL`] emitted events, so a deadline also
//! bounds the *prepare* phase on huge inline sources.
//!
//! Tokens are cheap to clone; every clone shares the same flag, so a
//! supervisor can hand one token to a job and cancel it from outside
//! (the service layer's load-shed and shutdown paths), while the
//! deadline bounds the job even when nobody is watching.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable stop signal: an atomic flag plus an optional deadline.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never stops anything until [`CancelToken::cancel`]
    /// is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally expires `timeout` from now. A timeout
    /// too large to represent is treated as "no deadline".
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// A token expiring at an absolute instant (for sharing one batch
    /// deadline across jobs).
    pub fn expiring_at(at: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(at),
        }
    }

    /// Raises the cancellation flag on every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] was called (ignores the
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Whether the wall-clock deadline (if any) has passed.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The poll the driver runs between compressed runs: cancelled or
    /// past the deadline.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.is_expired()
    }

    /// Time left before the deadline (`None` without one; zero once
    /// expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_does_not_stop() {
        let t = CancelToken::new();
        assert!(!t.should_stop());
        assert!(!t.is_cancelled());
        assert!(!t.is_expired());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_reaches_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.should_stop());
        assert!(c.is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_expired());
        assert!(t.should_stop());
        assert!(!t.is_cancelled(), "expiry is not cancellation");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_stop() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.should_stop());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn unrepresentable_deadline_means_none() {
        let t = CancelToken::with_deadline(Duration::MAX);
        assert!(!t.should_stop());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn absolute_deadline_is_honored() {
        let t = CancelToken::expiring_at(Instant::now());
        assert!(t.should_stop());
    }
}
