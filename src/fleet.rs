//! The [`Fleet`] facade: a fluent builder for fleet-scale
//! multiprogramming, mirroring [`crate::Simulation`].
//!
//! A fleet clones a few paper workloads into many tenant processes
//! (deterministically perturbed per tenant), partitions them into
//! fixed-size memory cells, and runs every cell through the paper's
//! Section-4 dispatch/swapper loop — sharded and work-stealing, with a
//! report that is byte-identical at any shard or thread count.
//!
//! ```
//! use cdmm_repro::{Fleet, PolicySpec};
//!
//! let report = Fleet::tenants(6)
//!     .workloads(["FDJAC"])
//!     .policy_mix([PolicySpec::Ws { tau: 2000 }, PolicySpec::Lru { frames: 16 }])
//!     .tenants_per_cell(2)
//!     .run()
//!     .expect("built-in workload");
//! assert_eq!(report.tenants.len(), 6);
//! assert!(report.total_faults > 0);
//! ```

use std::fmt;

use cdmm_core::fleet::{prepare_fleet, ChaosSpec, FleetError, FleetSpec, PreparedFleet};
use cdmm_core::PolicySpec;
use cdmm_vmsim::{Admission, CancelToken, FleetReport, FleetScorecard, NullTracer, Tracer};
use cdmm_workloads::Scale;

/// Fluent builder over the fleet scheduler; see the
/// [module docs](self) for an example.
///
/// Defaults: 8 tenants cloned from `FDJAC`/`TQL`/`HYBRJ` at
/// [`Scale::Small`] under a CD/WS/LRU policy mix, 4 tenants per
/// 64-frame cell, a 300-reference quantum, PI-level-1 admission,
/// seeded per-tenant jitter on, serial execution.
pub struct Fleet<'t> {
    spec: FleetSpec,
    tracer: Option<&'t mut dyn Tracer>,
}

impl fmt::Debug for Fleet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("spec", &self.spec)
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

impl<'t> Fleet<'t> {
    /// Starts a fleet of `n` tenant processes.
    pub fn tenants(n: usize) -> Self {
        Fleet {
            spec: FleetSpec {
                tenants: n,
                ..FleetSpec::default()
            },
            tracer: None,
        }
    }

    /// Fleet seed — drives every per-tenant perturbation stream
    /// (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// The paper workloads to clone, assigned round-robin over tenants.
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spec.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Workload size preset (default [`Scale::Small`]).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.spec.scale = scale;
        self
    }

    /// The policy mix, assigned round-robin over tenants (independently
    /// of the workload rotation).
    pub fn policy_mix<I>(mut self, mix: I) -> Self
    where
        I: IntoIterator<Item = PolicySpec>,
    {
        self.spec.policy_mix = mix.into_iter().collect();
        self
    }

    /// Page frames per memory cell (default 64).
    pub fn frames_per_cell(mut self, frames: u64) -> Self {
        self.spec.frames_per_cell = frames;
        self
    }

    /// Tenants sharing one cell — the contention domain (default 4).
    pub fn tenants_per_cell(mut self, n: usize) -> Self {
        self.spec.tenants_per_cell = n;
        self
    }

    /// Scheduling quantum in references (default 300).
    pub fn quantum(mut self, refs: u64) -> Self {
        self.spec.quantum = refs;
        self
    }

    /// Fault service time in references (default 2000; also the
    /// swap-in delay).
    pub fn fault_service(mut self, refs: u64) -> Self {
        self.spec.config.fault_service = refs;
        self
    }

    /// Admission control at cell entry (default
    /// [`Admission::PiLevel`]`(1)`).
    pub fn admission(mut self, admission: Admission) -> Self {
        self.spec.admission = admission;
        self
    }

    /// Work-distribution batches; 0 means one shard per cell (the
    /// default). Never changes the report.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Worker threads (default 1 = serial). Never changes the report.
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = threads;
        self
    }

    /// Seeded per-tenant perturbation (default on). Off, every clone
    /// of a workload is byte-identical.
    pub fn jitter(mut self, enabled: bool) -> Self {
        self.spec.jitter = enabled;
        self
    }

    /// Adds a directed chaos tenant: its directive stream is fuzzed
    /// and (for CD tenants) the engine armed to degrade to LRU.
    pub fn chaos(mut self, chaos: ChaosSpec) -> Self {
        self.spec.chaos.push(chaos);
        self
    }

    /// Collect a per-tenant [`cdmm_vmsim::RegistrySnapshot`] (default
    /// off; forces slow per-reference tracing).
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.spec.collect_registries = enabled;
        self
    }

    /// Attaches an event tracer; cell event streams are replayed into
    /// it deterministically, in cell order, after the run.
    pub fn tracer(mut self, tracer: &'t mut dyn Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The underlying [`FleetSpec`], for everything the builder does
    /// not wrap.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Manufactures the fleet without running it (compile + trace +
    /// clone), returning the content-addressed handle.
    pub fn prepare(&self) -> Result<PreparedFleet, FleetError> {
        prepare_fleet(&self.spec)
    }

    /// Prepares and runs the fleet to completion.
    pub fn run(self) -> Result<FleetReport, FleetError> {
        let fleet = prepare_fleet(&self.spec)?;
        match self.tracer {
            Some(t) => fleet.run_with(t),
            None => fleet.run(),
        }
    }

    /// Prepares and runs the fleet, returning the wall-side
    /// [`FleetScorecard`] (worker timelines, shard claim/steal
    /// counters, phase spans, hottest cells) next to the deterministic
    /// report. The scorecard describes *this* execution's geometry and
    /// timing; the report never varies with it.
    pub fn run_scored(self) -> Result<(FleetReport, FleetScorecard), FleetError> {
        let fleet = prepare_fleet(&self.spec)?;
        let token = CancelToken::new();
        match self.tracer {
            Some(t) => fleet.run_observed(t, None, &token),
            None => fleet.run_observed(&mut NullTracer, None, &token),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmm_vmsim::policy::cd::CdSelector;

    fn small<'t>() -> Fleet<'t> {
        Fleet::tenants(6)
            .workloads(["FDJAC"])
            .policy_mix([PolicySpec::Ws { tau: 2000 }, PolicySpec::Lru { frames: 16 }])
            .tenants_per_cell(2)
            .seed(7)
    }

    #[test]
    fn builder_runs_and_reports_every_tenant() {
        let report = small().run().expect("fleet runs");
        assert_eq!(report.tenants.len(), 6);
        assert_eq!(report.cells.len(), 3);
        assert!(report.cpu_utilization > 0.0);
    }

    #[test]
    fn report_is_identical_across_execution_geometry() {
        let serial = small().run().expect("serial");
        let parallel = small().threads(4).shards(2).run().expect("parallel");
        assert_eq!(serial, parallel, "threads/shards never change the report");
    }

    fn cd_fleet<'t>() -> Fleet<'t> {
        small().policy_mix([PolicySpec::Cd {
            selector: CdSelector::FirstFit,
        }])
    }

    #[test]
    fn tracer_observes_without_changing_the_run() {
        let mut log = cdmm_vmsim::EventLog::new(1 << 14);
        let traced = cd_fleet().tracer(&mut log).run().expect("traced");
        let plain = cd_fleet().run().expect("plain");
        assert_eq!(traced, plain);
        assert!(!log.is_empty(), "cell streams replay into the tracer");
    }

    #[test]
    fn cd_mix_and_admission_compose() {
        let report = Fleet::tenants(4)
            .workloads(["FDJAC"])
            .policy_mix([PolicySpec::Cd {
                selector: CdSelector::FirstFit,
            }])
            .tenants_per_cell(2)
            .admission(Admission::PiLevel(1))
            .run()
            .expect("CD fleet");
        for t in &report.tenants {
            assert!(t.policy.starts_with("CD"), "{}", t.policy);
            assert!(t.metrics.refs > 0);
        }
    }

    #[test]
    fn scored_run_reports_workers_without_changing_the_report() {
        let (report, scorecard) = small().threads(3).run_scored().expect("scored");
        assert_eq!(report, small().run().expect("plain"));
        assert!(!scorecard.workers.is_empty());
        assert_eq!(
            scorecard.workers.iter().map(|w| w.cells_run).sum::<u64>(),
            report.cells.len() as u64
        );
        assert!(scorecard.shard_claims > 0);
        assert_eq!(scorecard.cells.len(), report.cells.len());
    }

    #[test]
    fn metrics_knob_attaches_registries() {
        let report = small().metrics(true).run().expect("fleet");
        for t in &report.tenants {
            let snap = t.registry.as_ref().expect("registry collected");
            assert_eq!(snap.counter("refs"), t.metrics.refs);
        }
    }
}
