//! Umbrella crate for the CDMM reproduction workspace.
//!
//! The front door is the [`Simulation`] facade — a fluent builder over
//! the whole compile → instrument → trace → simulate pipeline:
//!
//! ```
//! use cdmm_repro::{PolicySpec, Simulation};
//!
//! let report = Simulation::workload("MAIN")
//!     .policy(PolicySpec::Lru { frames: 8 })
//!     .run()
//!     .expect("built-in workload");
//! println!("{}: {} faults", report.policy, report.metrics.faults);
//! ```
//!
//! For multiprogramming at scale, the [`Fleet`] builder clones paper
//! workloads into many perturbed tenants and schedules them over
//! sharded memory cells (byte-identical results at any thread count):
//!
//! ```
//! use cdmm_repro::{Fleet, PolicySpec};
//!
//! let report = Fleet::tenants(4)
//!     .workloads(["FDJAC"])
//!     .policy_mix([PolicySpec::Ws { tau: 2000 }])
//!     .tenants_per_cell(2)
//!     .run()
//!     .expect("built-in workloads");
//! assert_eq!(report.tenants.len(), 4);
//! ```
//!
//! The sub-crates remain the fine-grained API:
//!
//! - [`cdmm_lang`] — mini-FORTRAN front end
//! - [`cdmm_locality`] — compile-time locality analysis and directive insertion
//! - [`cdmm_trace`] — program interpreter and reference-trace generation
//! - [`cdmm_vmsim`] — virtual-memory simulator, the CD/LRU/WS policy zoo,
//!   and the `observe` event-tracing layer
//! - [`cdmm_workloads`] — the nine numerical programs from the paper
//! - [`cdmm_core`] — end-to-end pipeline and experiment harness
//!
//! The pre-facade module aliases (`cdmm_repro::core`, `::vmsim`, ...)
//! still work but are deprecated; depend on the sub-crates directly.

pub mod fleet;
pub mod simulation;

pub use fleet::Fleet;
pub use simulation::{PreparedSimulation, Report, Simulation, SimulationError};

// The names a facade user needs, lifted to the crate root.
pub use cdmm_core::fleet::{ChaosSpec, FleetError, FleetSpec, PreparedFleet};
pub use cdmm_core::{PipelineConfig, PipelineError, PolicySpec};
pub use cdmm_locality::{InsertOptions, PageGeometry, SizerMode};
pub use cdmm_vmsim::policy::cd::CdSelector;
pub use cdmm_vmsim::{
    Admission, CellPressure, EventLog, FleetReport, FleetScorecard, HistogramRecorder,
    HistogramSummary, JsonlSink, Metrics, MetricsRegistry, NullTracer, ProgressCounters,
    ProgressExporter, RegistrySnapshot, SimEvent, Span, Tee, TenantReport, Tracer, WorkerTimeline,
};
pub use cdmm_workloads::Scale;

/// Deprecated alias of [`cdmm_core`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_core` crate directly")]
pub mod core {
    pub use cdmm_core::*;
}

/// Deprecated alias of [`cdmm_lang`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_lang` crate directly")]
pub mod lang {
    pub use cdmm_lang::*;
}

/// Deprecated alias of [`cdmm_locality`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_locality` crate directly")]
pub mod locality {
    pub use cdmm_locality::*;
}

/// Deprecated alias of [`cdmm_trace`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_trace` crate directly")]
pub mod trace {
    pub use cdmm_trace::*;
}

/// Deprecated alias of [`cdmm_vmsim`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_vmsim` crate directly")]
pub mod vmsim {
    pub use cdmm_vmsim::*;
}

/// Deprecated alias of [`cdmm_workloads`].
#[deprecated(since = "0.1.0", note = "use the `cdmm_workloads` crate directly")]
pub mod workloads {
    pub use cdmm_workloads::*;
}
