//! Umbrella crate for the CDMM reproduction workspace.
//!
//! Re-exports every sub-crate so integration tests and examples can use a
//! single dependency. See the individual crates for the real APIs:
//!
//! - [`lang`] — mini-FORTRAN front end
//! - [`locality`] — compile-time locality analysis and directive insertion
//! - [`trace`] — program interpreter and reference-trace generation
//! - [`vmsim`] — virtual-memory simulator and the CD/LRU/WS policy zoo
//! - [`workloads`] — the nine numerical programs from the paper
//! - [`core`] — end-to-end pipeline and experiment harness

pub use cdmm_core as core;
pub use cdmm_lang as lang;
pub use cdmm_locality as locality;
pub use cdmm_trace as trace;
pub use cdmm_vmsim as vmsim;
pub use cdmm_workloads as workloads;
