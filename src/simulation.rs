//! The [`Simulation`] facade: one fluent builder covering the whole
//! compile → instrument → trace → simulate pipeline.
//!
//! The sub-crates stay the real API for fine-grained work; this facade
//! is the front door. A minimal run takes three lines:
//!
//! ```
//! use cdmm_repro::{PolicySpec, Simulation};
//!
//! let report = Simulation::workload("MAIN")
//!     .policy(PolicySpec::Lru { frames: 8 })
//!     .run()
//!     .expect("known workload compiles");
//! assert!(report.metrics.faults > 0);
//! ```
//!
//! Attach any [`Tracer`] to observe the run without changing it:
//!
//! ```
//! use cdmm_repro::{EventLog, Simulation};
//!
//! let mut log = EventLog::new(4096);
//! let traced = Simulation::workload("MAIN").tracer(&mut log).run().unwrap();
//! let plain = Simulation::workload("MAIN").run().unwrap();
//! assert_eq!(traced.metrics, plain.metrics, "tracing never alters a run");
//! assert!(!log.is_empty());
//! ```

use std::fmt;

use cdmm_core::{prepare, PipelineConfig, PipelineError, PolicySpec, Prepared};
use cdmm_locality::{InsertOptions, PageGeometry, SizerMode};
use cdmm_vmsim::policy::cd::CdSelector;
use cdmm_vmsim::{Metrics, MetricsRegistry, NullTracer, RegistrySnapshot, Tee, Tracer};
use cdmm_workloads::{by_name, Scale};

/// Facade failure: either the workload name or the pipeline rejected
/// the input.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// No built-in workload under this name.
    UnknownWorkload(String),
    /// Compilation, tracing, or validation failed.
    Pipeline(PipelineError),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::UnknownWorkload(name) => {
                write!(f, "unknown workload {name:?}; try MAIN, FDJAC, TQL, ...")
            }
            SimulationError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimulationError {}

impl From<PipelineError> for SimulationError {
    fn from(e: PipelineError) -> Self {
        SimulationError::Pipeline(e)
    }
}

/// The outcome of one facade run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The policy's own label, e.g. `"CD(level 2)"`.
    pub policy: String,
    /// The accumulated simulation metrics.
    pub metrics: Metrics,
}

enum Source {
    /// A built-in workload, resolved at prepare time.
    Workload(String),
    /// Caller-supplied mini-FORTRAN.
    Inline { name: String, text: String },
}

/// Fluent builder over the full pipeline; see the [module docs](self)
/// for examples.
///
/// Defaults mirror the paper's experimental setup: 256-byte pages,
/// 2000-reference fault service, minimum CD allocation of 2 pages, all
/// directives inserted, the CD policy honoring mid-level (`AtLevel(2)`)
/// requests, and no tracer.
pub struct Simulation<'t> {
    source: Source,
    scale: Scale,
    config: PipelineConfig,
    policy: PolicySpec,
    tracer: Option<&'t mut dyn Tracer>,
    metrics: bool,
}

impl fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match &self.source {
            Source::Workload(n) => n,
            Source::Inline { name, .. } => name,
        };
        f.debug_struct("Simulation")
            .field("source", name)
            .field("policy", &self.policy)
            .field("traced", &self.tracer.is_some())
            .finish_non_exhaustive()
    }
}

impl<'t> Simulation<'t> {
    fn with_source(source: Source) -> Self {
        Simulation {
            source,
            scale: Scale::Small,
            config: PipelineConfig::default(),
            policy: PolicySpec::Cd {
                selector: CdSelector::AtLevel(2),
            },
            tracer: None,
            metrics: false,
        }
    }

    /// Starts from a built-in workload (case-insensitive paper name:
    /// `"MAIN"`, `"FDJAC"`, ...). The name is resolved when the
    /// simulation is prepared or run.
    pub fn workload(name: &str) -> Self {
        Self::with_source(Source::Workload(name.to_string()))
    }

    /// Starts from caller-supplied mini-FORTRAN source text.
    pub fn from_source(name: &str, source: &str) -> Self {
        Self::with_source(Source::Inline {
            name: name.to_string(),
            text: source.to_string(),
        })
    }

    /// Workload size preset (built-in workloads only; default
    /// [`Scale::Small`]).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Page size in bytes (default 256, the paper's).
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.config.geometry.page_bytes = bytes;
        self
    }

    /// Full page/element geometry.
    pub fn geometry(mut self, geometry: PageGeometry) -> Self {
        self.config.geometry = geometry;
        self
    }

    /// Fault service time in references (default 2000).
    pub fn fault_service(mut self, refs: u64) -> Self {
        self.config.fault_service = refs;
        self
    }

    /// Minimum CD allocation in pages (default 2).
    pub fn min_alloc(mut self, pages: u64) -> Self {
        self.config.min_alloc = pages;
        self
    }

    /// Which directives the instrumenter inserts.
    pub fn directives(mut self, insert: InsertOptions) -> Self {
        self.config.insert = insert;
        self
    }

    /// Page-counting mode of the locality sizer.
    pub fn sizer_mode(mut self, mode: SizerMode) -> Self {
        self.config.sizer_mode = mode;
        self
    }

    /// The policy to simulate (default: CD at level 2).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an event tracer for the run. Tracing observes the
    /// simulation — metrics are identical with or without it.
    pub fn tracer(mut self, tracer: &'t mut dyn Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches an internal [`MetricsRegistry`] (default off). When
    /// enabled, every run feeds the registry and
    /// [`PreparedSimulation::metrics_snapshot`] returns the accumulated
    /// counters and histogram digests. Like tracing, the registry
    /// observes the run without changing its numbers; it composes with
    /// a user [`Tracer`] via a [`Tee`].
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Runs the front half of the pipeline once, returning a handle
    /// that can simulate many policies without re-compiling.
    pub fn prepare(self) -> Result<PreparedSimulation<'t>, SimulationError> {
        let (name, text) = match self.source {
            Source::Workload(name) => {
                let w = by_name(&name, self.scale).ok_or(SimulationError::UnknownWorkload(name))?;
                (w.name.to_string(), w.source)
            }
            Source::Inline { name, text } => (name, text),
        };
        let prepared = prepare(&name, &text, self.config)?;
        Ok(PreparedSimulation {
            prepared,
            policy: self.policy,
            tracer: self.tracer,
            registry: self.metrics.then(MetricsRegistry::new),
        })
    }

    /// Prepares and runs the configured policy in one step.
    pub fn run(self) -> Result<Report, SimulationError> {
        self.prepare().map(|mut p| p.run())
    }
}

/// A compiled, instrumented, traced program plus the builder's policy
/// and tracer — ready to simulate repeatedly.
///
/// [`PreparedSimulation::run`] uses the builder's policy;
/// [`PreparedSimulation::run_policy`] simulates any other
/// [`PolicySpec`] on the same prepared program.
pub struct PreparedSimulation<'t> {
    prepared: Prepared,
    policy: PolicySpec,
    tracer: Option<&'t mut dyn Tracer>,
    registry: Option<MetricsRegistry>,
}

impl fmt::Debug for PreparedSimulation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedSimulation")
            .field("program", &self.prepared.name())
            .field("policy", &self.policy)
            .field("traced", &self.tracer.is_some())
            .field("metrics", &self.registry.is_some())
            .finish()
    }
}

impl PreparedSimulation<'_> {
    /// Runs the builder's configured policy (through the builder's
    /// tracer, when one was attached).
    pub fn run(&mut self) -> Report {
        self.run_policy(self.policy)
    }

    /// Runs any policy on the prepared program, reusing the compiled
    /// traces. The builder's tracer and metrics registry (if attached)
    /// observe this run too.
    pub fn run_policy(&mut self, policy: PolicySpec) -> Report {
        let label = self.prepared.policy_label(policy);
        let metrics = match (&mut self.registry, &mut self.tracer) {
            (Some(reg), Some(t)) => {
                let mut tee = Tee::new(*t, reg);
                self.prepared.run_policy_with(policy, &mut tee)
            }
            (Some(reg), None) => self.prepared.run_policy_with(policy, reg),
            (None, Some(t)) => self.prepared.run_policy_with(policy, *t),
            (None, None) => self.prepared.run_policy_with(policy, &mut NullTracer),
        };
        Report {
            policy: label,
            metrics,
        }
    }

    /// A snapshot of the internal metrics registry, accumulated over
    /// every run so far. `None` unless the builder enabled
    /// [`Simulation::metrics`].
    pub fn metrics_snapshot(&self) -> Option<RegistrySnapshot> {
        self.registry.as_ref().map(MetricsRegistry::snapshot)
    }

    /// The underlying [`Prepared`] program, for everything the facade
    /// does not wrap (analysis, traces, fingerprints).
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdmm_vmsim::EventLog;

    #[test]
    fn unknown_workload_is_reported() {
        let err = Simulation::workload("NOPE").run().unwrap_err();
        assert!(matches!(err, SimulationError::UnknownWorkload(_)));
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn bad_source_surfaces_pipeline_error() {
        let err = Simulation::from_source("BAD", "PROGRAM X\nQ(1) = 1.0\nEND")
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::Pipeline(_)));
    }

    #[test]
    fn facade_matches_direct_pipeline_calls() {
        let report = Simulation::workload("MAIN")
            .policy(PolicySpec::Lru { frames: 8 })
            .run()
            .expect("MAIN runs");
        let w = by_name("MAIN", Scale::Small).expect("workload");
        let p = prepare(w.name, &w.source, PipelineConfig::default()).expect("pipeline");
        assert_eq!(report.metrics, p.run_lru(8));
        assert_eq!(report.policy, "LRU(8)");
    }

    #[test]
    fn prepared_simulation_reruns_without_recompiling() {
        let mut prepared = Simulation::workload("FDJAC").prepare().expect("FDJAC");
        let cd = prepared.run();
        let lru = prepared.run_policy(PolicySpec::Lru { frames: 8 });
        assert!(cd.policy.starts_with("CD"));
        assert_eq!(cd.metrics.refs, lru.metrics.refs, "same reference string");
    }

    #[test]
    fn traced_facade_run_is_identical_and_captures_events() {
        let mut log = EventLog::new(1 << 14);
        let traced = Simulation::workload("MAIN").tracer(&mut log).run().unwrap();
        let plain = Simulation::workload("MAIN").run().unwrap();
        assert_eq!(traced, plain);
        assert!(!log.is_empty(), "a CD run emits directive events");
    }

    #[test]
    fn metrics_knob_accumulates_a_snapshot_without_changing_the_run() {
        let mut with = Simulation::workload("MAIN")
            .metrics(true)
            .prepare()
            .expect("MAIN");
        let mut without = Simulation::workload("MAIN").prepare().expect("MAIN");
        assert_eq!(without.metrics_snapshot(), None, "registry is opt-in");
        let a = with.run();
        let b = without.run();
        assert_eq!(a, b, "an attached registry never changes the numbers");
        let snap = with.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("faults"), a.metrics.faults);
        assert_eq!(snap.counter("refs"), a.metrics.refs);
        assert!(
            snap.histogram("resident_occupancy").is_some(),
            "per-ref occupancy recorded"
        );
        // The registry accumulates across runs on the same handle.
        with.run();
        let twice = with.metrics_snapshot().expect("metrics enabled");
        assert_eq!(twice.counter("faults"), 2 * a.metrics.faults);
    }

    #[test]
    fn metrics_and_tracer_compose_through_a_tee() {
        let mut log = EventLog::new(1 << 14);
        let mut sim = Simulation::workload("MAIN")
            .tracer(&mut log)
            .metrics(true)
            .prepare()
            .expect("MAIN");
        let report = sim.run();
        let snap = sim.metrics_snapshot().expect("metrics enabled");
        assert_eq!(snap.counter("faults"), report.metrics.faults);
        drop(sim);
        assert!(!log.is_empty(), "the user tracer still sees events");
    }

    #[test]
    fn knobs_reach_the_pipeline() {
        let small = Simulation::workload("MAIN")
            .page_size(128)
            .fault_service(500)
            .min_alloc(1)
            .prepare()
            .expect("MAIN");
        let cfg = small.prepared().config();
        assert_eq!(cfg.geometry.page_bytes, 128);
        assert_eq!(cfg.fault_service, 500);
        assert_eq!(cfg.min_alloc, 1);
    }
}
