//! Quickstart: compile a numerical program, let the compiler insert
//! memory directives, and compare the CD policy against LRU and WS —
//! all through the `Simulation` facade.
//!
//! Run with `cargo run --example quickstart`.

use cdmm_repro::{PolicySpec, Simulation};

const SOURCE: &str = "
PROGRAM DEMO
PARAMETER (N = 64, NT = 8)
DIMENSION A(N,N), B(N,N), S(N)
C Initialize both fields.
DO 5 J = 1, N
  DO 6 I = 1, N
    A(I,J) = FLOAT(I + J)
    B(I,J) = 0.0
6 CONTINUE
5 CONTINUE
C Time steps: a streaming update phase and a row-reduction phase.
DO 10 T = 1, NT
  DO 20 J = 1, N
    DO 30 I = 1, N
      B(I,J) = 0.5 * (A(I,J) + B(I,J))
30  CONTINUE
20 CONTINUE
  DO 40 J = 1, N
    S(J) = 0.0
    DO 50 K = 1, N
      S(J) = S(J) + A(J,K)
50  CONTINUE
40 CONTINUE
10 CONTINUE
END
";

fn main() {
    // Compile, analyse, insert directives, and trace — one builder.
    // The default policy is CD honoring the mid-level requests.
    let mut sim = Simulation::from_source("DEMO", SOURCE)
        .prepare()
        .expect("pipeline");

    println!(
        "DEMO: {} array references over {} virtual pages, {} directives inserted\n",
        sim.prepared().plain_trace().ref_count(),
        sim.prepared().virtual_pages(),
        sim.prepared().cd_trace().directive_count(),
    );

    let cd = sim.run();

    // Classic baselines at comparable operating points.
    let frames = cd.metrics.mean_mem().round() as usize;
    let lru = sim.run_policy(PolicySpec::Lru { frames });
    let ws = sim.run_policy(PolicySpec::Ws { tau: 2_000 });

    println!("{:<18} {:>10} {:>10} {:>14}", "policy", "PF", "MEM", "ST");
    for r in [&cd, &lru, &ws] {
        println!(
            "{:<18} {:>10} {:>10.2} {:>14.3e}",
            r.policy,
            r.metrics.faults,
            r.metrics.mean_mem(),
            r.metrics.st_cost()
        );
    }
    println!(
        "\nAt the same average memory, CD faults {}x less than LRU.",
        if cd.metrics.faults > 0 {
            lru.metrics.faults / cd.metrics.faults.max(1)
        } else {
            0
        }
    );
}
