//! Quickstart: compile a numerical program, let the compiler insert
//! memory directives, and compare the CD policy against LRU and WS.
//!
//! Run with `cargo run --example quickstart`.

use cdmm_repro::core::{prepare, PipelineConfig};
use cdmm_repro::vmsim::policy::cd::CdSelector;

const SOURCE: &str = "
PROGRAM DEMO
PARAMETER (N = 64, NT = 8)
DIMENSION A(N,N), B(N,N), S(N)
C Initialize both fields.
DO 5 J = 1, N
  DO 6 I = 1, N
    A(I,J) = FLOAT(I + J)
    B(I,J) = 0.0
6 CONTINUE
5 CONTINUE
C Time steps: a streaming update phase and a row-reduction phase.
DO 10 T = 1, NT
  DO 20 J = 1, N
    DO 30 I = 1, N
      B(I,J) = 0.5 * (A(I,J) + B(I,J))
30  CONTINUE
20 CONTINUE
  DO 40 J = 1, N
    S(J) = 0.0
    DO 50 K = 1, N
      S(J) = S(J) + A(J,K)
50  CONTINUE
40 CONTINUE
10 CONTINUE
END
";

fn main() {
    // Compile, analyse, insert directives, and trace — one call.
    let prepared = prepare("DEMO", SOURCE, PipelineConfig::default()).expect("pipeline");

    println!(
        "DEMO: {} array references over {} virtual pages, {} directives inserted\n",
        prepared.plain_trace().ref_count(),
        prepared.virtual_pages(),
        prepared.cd_trace().directive_count(),
    );

    // The CD policy, honoring the mid-level directive requests.
    let cd = prepared.run_cd(CdSelector::AtLevel(2));

    // Classic baselines at comparable operating points.
    let lru = prepared.run_lru(cd.mean_mem().round() as usize);
    let ws_tau = 2_000;
    let ws = prepared.run_ws(ws_tau);

    println!("{:<18} {:>10} {:>10} {:>14}", "policy", "PF", "MEM", "ST");
    for (name, m) in [
        ("CD (level 2)".to_string(), cd),
        (
            format!("LRU({} frames)", cd.mean_mem().round() as usize),
            lru,
        ),
        (format!("WS(tau={ws_tau})"), ws),
    ] {
        println!(
            "{:<18} {:>10} {:>10.2} {:>14.3e}",
            name,
            m.faults,
            m.mean_mem(),
            m.st_cost()
        );
    }
    println!(
        "\nAt the same average memory, CD faults {}x less than LRU.",
        if cd.faults > 0 {
            lru.faults / cd.faults.max(1)
        } else {
            0
        }
    );
}
