//! A tour of the compile-time locality analysis on the paper's own
//! worked examples: the Figure 1 locality structure and the Figure 2
//! priority-index assignment.
//!
//! Run with `cargo run --example locality_tour`.

use cdmm_locality::{analyze_program, PageGeometry};

/// The Figure 1 code: E and F referenced row-wise in loop 20, G and H
/// column-wise in loop 30, all inside loop 10.
const FIG1: &str = "
PROGRAM FIG1
PARAMETER (M = 200, N = 10)
DIMENSION E(N,M), F(N,M), G(M,N), H(M,N)
DO 10 I = 1, N
  DO 20 J = 1, M
    E(I,J) = F(I,J) + 1.0
20 CONTINUE
  DO 30 K = 1, M
    G(K,I) = H(K,I)
30 CONTINUE
10 CONTINUE
END
";

/// The Figure 2 / Figure 5 loop structure: loop 4 contains loop 2 and
/// loop 3; loop 3 contains loop 1.
const FIG2: &str = "
PROGRAM FIG2
PARAMETER (N = 50)
DIMENSION A(N), B(N), E(N), F(N), CC(N,N)
DO 4 I = 1, N
  A(I) = B(I)
  DO 2 J = 1, N
    CC(I,J) = A(J) * 2.0
2 CONTINUE
  DO 3 K = 1, N
    E(K) = F(K) + 1.0
    DO 1 L = 1, N
      CC(L,K) = E(K)
1   CONTINUE
3 CONTINUE
4 CONTINUE
END
";

fn main() {
    println!("=== Figure 1: hierarchical localities at the source level ===\n");
    let analysis = analyze_program(FIG1, PageGeometry::PAPER).expect("analysis");
    for l in &analysis.tree.loops {
        let pages = analysis.sizes.pages_of(l.id);
        println!(
            "loop {:>2} (var {}, level {}, PI {}): locality size {} pages",
            l.label.unwrap_or(0),
            l.var,
            l.lambda,
            l.pi,
            pages
        );
        for c in &analysis.sizes.contributions[l.id.0] {
            println!(
                "    {:<4} contributes {:>3} pages ({})",
                c.array, c.pages, c.rule
            );
        }
    }

    println!("\n=== Figure 2: Procedure 1 priority indexes ===\n");
    let analysis = analyze_program(FIG2, PageGeometry::PAPER).expect("analysis");
    println!("The paper assigns: loop 4 -> PI 3, loop 3 -> PI 2, loops 1 and 2 -> PI 1\n");
    for label in [4u32, 2, 3, 1] {
        let l = analysis.tree.by_label(label).expect("labelled loop");
        println!("loop {} gets PI = {}", label, l.pi);
    }
    let pi = |label: u32| analysis.tree.by_label(label).unwrap().pi;
    assert_eq!(pi(4), 3);
    assert_eq!(pi(3), 2);
    assert_eq!(pi(2), 1);
    assert_eq!(pi(1), 1);
    println!("\nProcedure 1 output matches Figure 2 of the paper.");
}
