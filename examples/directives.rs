//! Directive insertion end to end: reproduce the Figure 5 layout —
//! `ALLOCATE` before every loop carrying the enclosing request list,
//! `LOCK` before nested loops, `UNLOCK` after the outermost loop — and
//! show the instrumented source the "compiler" emits.
//!
//! Run with `cargo run --example directives`.

use cdmm_lang::to_source;
use cdmm_locality::{analyze_program, instrument, InsertOptions, PageGeometry};

/// A reconstruction of the paper's Figure 5a program shape.
const FIG5: &str = "
PROGRAM FIG5
PARAMETER (N = 100)
DIMENSION A(N), B(N), C(N), D(N), E(N), F(N)
DIMENSION CC(N,N), DD(N,N), GG(N,N)
DO 4 I = 1, N
  A(I) = B(I) + 1.0
  DO 2 J = 1, N
    C(J) = D(J) + CC(I,J) + DD(J,I)
2 CONTINUE
  DO 3 K = 1, N
    E(K) = F(K) + 1.0
    DO 1 L = 1, N
      GG(L,K) = E(K) * 2.0
1   CONTINUE
3 CONTINUE
4 CONTINUE
END
";

fn main() {
    let analysis = analyze_program(FIG5, PageGeometry::PAPER).expect("analysis");

    println!("Loop structure and priorities (Procedure 1):");
    for l in &analysis.tree.loops {
        println!(
            "  loop {:>2}: level {} PI {} locality {} pages",
            l.label.unwrap_or(0),
            l.lambda,
            l.pi,
            analysis.sizes.pages_of(l.id)
        );
    }

    let instrumented = instrument(&analysis, InsertOptions::default());
    let text = to_source(&instrumented);
    println!("\nInstrumented program (compare with Figure 5c of the paper):\n");
    println!("{text}");

    // The instrumented text is itself a valid program.
    let reparsed = cdmm_lang::parse(&text).expect("instrumented source reparses");
    assert_eq!(instrumented, reparsed);
    println!("Round trip OK: the directive syntax reparses to the same program.");
}
