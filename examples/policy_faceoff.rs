//! Policy face-off on a real workload: run one of the paper's traced
//! programs under the full policy zoo — CD, LRU, WS, FIFO, OPT, PFF and
//! the WS variants — and print the PF / MEM / ST trade-off each policy
//! achieves. Every policy is named as a `PolicySpec` value and run
//! through one `Simulation` handle.
//!
//! Run with `cargo run --release --example policy_faceoff [PROGRAM]`
//! (default CONDUCT; any of the nine paper programs works).

use cdmm_repro::{CdSelector, PolicySpec, Report, Simulation};

fn main() {
    let program = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CONDUCT".to_string());
    let mut sim = Simulation::workload(&program)
        .policy(PolicySpec::Cd {
            selector: CdSelector::AtLevel(2),
        })
        .prepare()
        .unwrap_or_else(|e| panic!("{e}"));

    println!(
        "{}: {} refs over {} pages\n",
        sim.prepared().name(),
        sim.prepared().plain_trace().ref_count(),
        sim.prepared().virtual_pages()
    );

    let cd = sim.run();
    let frames = cd.metrics.mean_mem().round().max(1.0) as usize;
    let tau = 1_000;

    let specs = [
        PolicySpec::Cd {
            selector: CdSelector::Outermost,
        },
        PolicySpec::Cd {
            selector: CdSelector::Innermost,
        },
        PolicySpec::Lru { frames },
        PolicySpec::Ws { tau },
        PolicySpec::Fifo { frames },
        PolicySpec::Opt { frames },
        PolicySpec::Pff { threshold: 200 },
        PolicySpec::DampedWs {
            tau,
            reserve_cap: 8,
        },
        PolicySpec::SampledWs { tau, sigma: 100 },
        PolicySpec::VariableSampledWs {
            min_interval: 50,
            max_interval: 2_000,
            fault_quota: 10,
        },
    ];
    let mut rows: Vec<Report> = vec![cd];
    rows.extend(specs.iter().map(|&s| sim.run_policy(s)));

    println!(
        "{:<18} {:>8} {:>9} {:>13} {:>9}",
        "policy", "PF", "MEM", "ST", "peak"
    );
    for r in &rows {
        println!(
            "{:<18} {:>8} {:>9.2} {:>13.3e} {:>9}",
            r.policy,
            r.metrics.faults,
            r.metrics.mean_mem(),
            r.metrics.st_cost(),
            r.metrics.peak_resident
        );
    }

    let opt = &rows
        .iter()
        .find(|r| r.policy.starts_with("OPT"))
        .expect("OPT row")
        .metrics;
    let lru = &rows
        .iter()
        .find(|r| r.policy.starts_with("LRU"))
        .expect("LRU row")
        .metrics;
    assert!(opt.faults <= lru.faults, "OPT lower-bounds LRU");
    println!("\nSanity: OPT({frames}) <= LRU({frames}) in faults, as theory demands.");
}
