//! Policy face-off on a real workload: run one of the paper's traced
//! programs under the full policy zoo — CD, LRU, WS, FIFO, OPT, PFF and
//! the WS variants — and print the PF / MEM / ST trade-off each policy
//! achieves.
//!
//! Run with `cargo run --release --example policy_faceoff [PROGRAM]`
//! (default CONDUCT; any of the nine paper programs works).

use cdmm_repro::core::{prepare, PipelineConfig};
use cdmm_repro::vmsim::policy::cd::CdSelector;
use cdmm_repro::vmsim::policy::fifo::Fifo;
use cdmm_repro::vmsim::policy::opt::Opt;
use cdmm_repro::vmsim::policy::pff::Pff;
use cdmm_repro::vmsim::policy::ws_variants::{DampedWs, SampledWs, VariableSampledWs};
use cdmm_repro::vmsim::{simulate, Metrics, SimConfig};
use cdmm_repro::workloads::{by_name, Scale};

fn main() {
    let program = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CONDUCT".to_string());
    let workload = by_name(&program, Scale::Small)
        .unwrap_or_else(|| panic!("unknown program {program}; try MAIN, FDJAC, TQL, ..."));
    let prepared =
        prepare(workload.name, &workload.source, PipelineConfig::default()).expect("pipeline");

    println!(
        "{}: {}\n{} refs over {} pages\n",
        workload.name,
        workload.description,
        prepared.plain_trace().ref_count(),
        prepared.virtual_pages()
    );

    let cd = prepared.run_cd(CdSelector::AtLevel(2));
    let frames = cd.mean_mem().round().max(1.0) as usize;
    let tau = 1_000;
    let cfg = SimConfig::default();
    let trace = prepared.plain_trace();

    let mut rows: Vec<(String, Metrics)> = vec![
        ("CD (level 2)".into(), cd),
        (
            "CD (outermost)".into(),
            prepared.run_cd(CdSelector::Outermost),
        ),
        (
            "CD (innermost)".into(),
            prepared.run_cd(CdSelector::Innermost),
        ),
        (format!("LRU({frames})"), prepared.run_lru(frames)),
        (format!("WS({tau})"), prepared.run_ws(tau)),
    ];
    rows.push((
        format!("FIFO({frames})"),
        simulate(trace, &mut Fifo::new(frames), cfg),
    ));
    rows.push((
        format!("OPT({frames})"),
        simulate(trace, &mut Opt::for_trace(trace, frames), cfg),
    ));
    rows.push(("PFF(200)".into(), simulate(trace, &mut Pff::new(200), cfg)));
    rows.push((
        format!("DWS({tau},8)"),
        simulate(trace, &mut DampedWs::new(tau, 8), cfg),
    ));
    rows.push((
        format!("SWS({tau},100)"),
        simulate(trace, &mut SampledWs::new(tau, 100), cfg),
    ));
    rows.push((
        "VSWS(50,2000,10)".into(),
        simulate(trace, &mut VariableSampledWs::new(50, 2_000, 10), cfg),
    ));

    println!(
        "{:<18} {:>8} {:>9} {:>13} {:>9}",
        "policy", "PF", "MEM", "ST", "peak"
    );
    for (name, m) in &rows {
        println!(
            "{:<18} {:>8} {:>9.2} {:>13.3e} {:>9}",
            name,
            m.faults,
            m.mean_mem(),
            m.st_cost(),
            m.peak_resident
        );
    }

    let opt = &rows
        .iter()
        .find(|(n, _)| n.starts_with("OPT"))
        .expect("OPT row")
        .1;
    let lru = &rows
        .iter()
        .find(|(n, _)| n.starts_with("LRU"))
        .expect("LRU row")
        .1;
    assert!(opt.faults <= lru.faults, "OPT lower-bounds LRU");
    println!("\nSanity: OPT({frames}) <= LRU({frames}) in faults, as theory demands.");
}
