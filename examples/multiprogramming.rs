//! Multiprogramming (the paper's future work): run a mix of the paper's
//! programs in one shared memory, once with every process under CD's
//! dynamic first-fit directive selection and once under the Working Set
//! policy, and compare completion time, faults and swap activity.
//!
//! Run with `cargo run --release --example multiprogramming`.

use cdmm_core::{prepare, PipelineConfig};
use cdmm_vmsim::multiprog::{run_multiprogram, MultiConfig, ProcPolicy};
use cdmm_workloads::{by_name, Scale};

fn main() {
    let names = ["FDJAC", "TQL", "HYBRJ"];
    let prepared: Vec<_> = names
        .iter()
        .map(|n| {
            let w = by_name(n, Scale::Small).expect("known workload");
            prepare(w.name, &w.source, PipelineConfig::default()).expect("pipeline")
        })
        .collect();

    for frames in [24u64, 48, 96] {
        println!("=== {frames} shared frames ===");
        for (label, policy) in [
            ("CD", ProcPolicy::Cd { min_alloc: 2 }),
            ("WS", ProcPolicy::Ws { tau: 2_000 }),
        ] {
            let specs: Vec<_> = prepared
                .iter()
                .map(|p| {
                    let trace = match policy {
                        ProcPolicy::Cd { .. } => p.cd_trace().to_trace(),
                        _ => p.plain_trace().to_trace(),
                    };
                    (p.name().to_string(), trace, policy)
                })
                .collect();
            let r = run_multiprogram(
                specs,
                MultiConfig {
                    total_frames: frames,
                    ..MultiConfig::default()
                },
            );
            println!(
                "  {label}: makespan {:>10}  total faults {:>6}  swaps {:>3}  cpu {:>5.1}%",
                r.makespan,
                r.total_faults,
                r.swap_events,
                r.cpu_utilization * 100.0
            );
            for p in &r.processes {
                println!(
                    "      {:<6} PF {:>6}  MEM {:>6.2}  finished at {:>10}",
                    p.name,
                    p.metrics.faults,
                    p.metrics.mean_mem(),
                    p.finished_at
                );
            }
        }
        println!();
    }
}
