//! Multiprogramming (the paper's future work): run a mix of the paper's
//! programs in one shared memory cell via the [`Fleet`] builder, once
//! with every tenant under CD's dynamic first-fit directive selection
//! and once under the Working Set policy, and compare completion time,
//! faults and swap activity.
//!
//! Run with `cargo run --release --example multiprogramming`.

use cdmm_repro::{Admission, CdSelector, Fleet, PolicySpec};

fn main() {
    for frames in [24u64, 48, 96] {
        println!("=== {frames} shared frames ===");
        for (label, mix) in [
            (
                "CD",
                PolicySpec::Cd {
                    selector: CdSelector::FirstFit,
                },
            ),
            ("WS", PolicySpec::Ws { tau: 2_000 }),
        ] {
            // One three-tenant cell under free admission with jitter
            // off reproduces the classic shared-pool round-robin run.
            let r = Fleet::tenants(3)
                .workloads(["FDJAC", "TQL", "HYBRJ"])
                .policy_mix([mix])
                .frames_per_cell(frames)
                .tenants_per_cell(3)
                .admission(Admission::Free)
                .jitter(false)
                .run()
                .expect("built-in workloads");
            println!(
                "  {label}: makespan {:>10}  total faults {:>6}  swaps {:>3}  cpu {:>5.1}%",
                r.makespan,
                r.total_faults,
                r.swap_events,
                r.cpu_utilization * 100.0
            );
            for t in &r.tenants {
                println!(
                    "      {:<11} PF {:>6}  MEM {:>6.2}  finished at {:>10}",
                    t.name,
                    t.metrics.faults,
                    t.metrics.mean_mem(),
                    t.finished_at
                );
            }
        }
        println!();
    }
}
